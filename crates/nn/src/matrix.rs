//! Dense row-major `f32` matrices and the vectorized matmul kernels.
//!
//! # Kernel determinism policy
//!
//! Every kernel has two modes (see [`MatmulMode`]):
//!
//! * **Strict** (default): bitwise identical to the naive reference loop.
//!   Each output element accumulates its `k` terms in ascending order with
//!   one `mul` + one `add` rounding per term. SIMD is still possible
//!   because vector lanes hold *different* output elements — broadcasting
//!   `a[i][kk]` against a row panel of `b` keeps every element's own
//!   accumulation chain untouched. The strict AVX2/SSE2 paths therefore
//!   produce the same bits as the scalar loop, just faster.
//! * **Fast** (opt-in via `SPG_FAST_MATH=1` or [`set_matmul_mode`]): allows
//!   FMA contraction (one rounding per term instead of two) and, for the
//!   dot-product kernel, multiple independent accumulators (reassociation).
//!   Results are deterministic for a given CPU but *not* bitwise equal to
//!   strict mode; the property tests bound the divergence at 1e-5 relative.
//!
//! Dispatch picks the widest instruction set at runtime
//! (`is_x86_feature_detected!`, cached) and falls back to a portable
//! 8-wide unrolled path on other architectures. See DESIGN.md §
//! "Kernel vectorization policy" for how to add a kernel without breaking
//! the determinism guarantees.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Floating-point contract for the matmul kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulMode {
    /// Bitwise identical to the naive reference loops (default).
    Strict,
    /// FMA + reassociation allowed; deterministic but not bitwise equal
    /// to strict. Opt-in via `SPG_FAST_MATH=1` or [`set_matmul_mode`].
    Fast,
}

const MODE_UNSET: u8 = 0;
const MODE_STRICT: u8 = 1;
const MODE_FAST: u8 = 2;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// The process-wide kernel mode. First call reads `SPG_FAST_MATH`
/// (`1`/`true` enables fast math); later calls are a single atomic load.
pub fn matmul_mode() -> MatmulMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_STRICT => MatmulMode::Strict,
        MODE_FAST => MatmulMode::Fast,
        _ => {
            let fast = std::env::var("SPG_FAST_MATH")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            let mode = if fast {
                MatmulMode::Fast
            } else {
                MatmulMode::Strict
            };
            set_matmul_mode(mode);
            mode
        }
    }
}

/// Override the process-wide kernel mode (wins over `SPG_FAST_MATH`).
pub fn set_matmul_mode(mode: MatmulMode) {
    let tag = match mode {
        MatmulMode::Strict => MODE_STRICT,
        MatmulMode::Fast => MODE_FAST,
    };
    MODE.store(tag, Ordering::Relaxed);
}

/// Numerically stable logistic function, shared by the tape ops and the
/// tape-free inference path so both produce identical bits.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// 1x1 matrix.
    pub fn scalar(x: f32) -> Self {
        Self::from_vec(1, 1, vec![x])
    }

    /// The single element of a 1x1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!((self.rows, self.cols), (1, 1), "item() requires 1x1");
        self.data[0]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, x: f32) {
        self.data[r * self.cols + c] = x;
    }

    /// `self @ other` under the process-wide [`matmul_mode`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with_mode(other, matmul_mode())
    }

    /// `self @ other` under an explicit mode (tests and benches use this
    /// so parallel test threads never race on the global mode).
    pub fn matmul_with_mode(&self, other: &Matrix, mode: MatmulMode) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into_mode(other, &mut out, mode);
        out
    }

    /// `self @ other` into a preallocated (and re-zeroed) `out`, under the
    /// process-wide mode. The workhorse of the tape-free inference path —
    /// no allocation when `out` comes from a scratch arena.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_mode(other, out, matmul_mode());
    }

    /// `self @ other` into `out` under an explicit mode.
    pub fn matmul_into_mode(&self, other: &Matrix, out: &mut Matrix, mode: MatmulMode) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul out shape mismatch"
        );
        out.fill_zero();
        matmul_kernel(self, other, out, mode);
    }

    /// `self^T @ other` without materialising the transpose, under the
    /// process-wide mode.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        self.t_matmul_with_mode(other, matmul_mode())
    }

    /// `self^T @ other` under an explicit mode.
    pub fn t_matmul_with_mode(&self, other: &Matrix, mode: MatmulMode) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        t_matmul_kernel(self, other, &mut out, mode);
        out
    }

    /// `self @ other^T` without materialising the transpose, under the
    /// process-wide mode.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        self.matmul_t_with_mode(other, matmul_mode())
    }

    /// `self @ other^T` under an explicit mode.
    pub fn matmul_t_with_mode(&self, other: &Matrix, mode: MatmulMode) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        matmul_t_kernel(self, other, &mut out, mode);
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place broadcast add of a `1 x cols` bias row to every row.
    /// Same element order as `Tape::add_row`, so bitwise identical.
    pub fn add_row_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "add_row_assign needs a 1-row bias");
        assert_eq!(self.cols, bias.cols, "add_row_assign width mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// In-place elementwise tanh (same scalar op as `Tape::tanh`).
    pub fn tanh_assign(&mut self) {
        for x in &mut self.data {
            *x = x.tanh();
        }
    }

    /// In-place elementwise ReLU (same `max(0.0)` as `Tape::relu`).
    pub fn relu_assign(&mut self) {
        for x in &mut self.data {
            *x = x.max(0.0);
        }
    }

    /// In-place elementwise sigmoid (same two-branch formula as
    /// `Tape::sigmoid`).
    pub fn sigmoid_assign(&mut self) {
        for x in &mut self.data {
            *x = stable_sigmoid(*x);
        }
    }

    /// In-place `self *= s`.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Fill with zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

// ---- dispatch -------------------------------------------------------------

/// `out += a @ b` for zeroed `out`. Picks the widest runtime-detected
/// instruction set; the strict variants are bitwise identical to
/// `portable::matmul`, the FMA variant is Fast-mode only.
fn matmul_kernel(a: &Matrix, b: &Matrix, out: &mut Matrix, mode: MatmulMode) {
    let (n, k, m) = (a.rows, a.cols, b.cols);
    #[cfg(target_arch = "x86_64")]
    {
        let lvl = x86::level();
        if lvl >= x86::LVL_AVX2 {
            // SAFETY: AVX2 (and FMA for the fast variant) verified by
            // `x86::level`; slice lengths checked by the callers' asserts.
            unsafe {
                if mode == MatmulMode::Fast && lvl >= x86::LVL_AVX2_FMA {
                    x86::matmul_avx2_fma(&a.data, &b.data, &mut out.data, n, k, m);
                } else {
                    x86::matmul_avx2(&a.data, &b.data, &mut out.data, n, k, m);
                }
            }
            return;
        }
        if lvl >= x86::LVL_SSE2 {
            // SAFETY: SSE2 verified by `x86::level`.
            unsafe { x86::matmul_sse2(&a.data, &b.data, &mut out.data, n, k, m) };
            return;
        }
    }
    let _ = mode; // non-x86 targets only have the strict portable path
    portable::matmul(&a.data, &b.data, &mut out.data, n, k, m);
}

/// `out += a^T @ b` for zeroed `out` (`a` is `k x n`, column-broadcast).
fn t_matmul_kernel(a: &Matrix, b: &Matrix, out: &mut Matrix, mode: MatmulMode) {
    let (k, n, m) = (a.rows, a.cols, b.cols);
    #[cfg(target_arch = "x86_64")]
    {
        let lvl = x86::level();
        if lvl >= x86::LVL_AVX2 {
            // SAFETY: features verified by `x86::level`.
            unsafe {
                if mode == MatmulMode::Fast && lvl >= x86::LVL_AVX2_FMA {
                    x86::t_matmul_avx2_fma(&a.data, &b.data, &mut out.data, n, k, m);
                } else {
                    x86::t_matmul_avx2(&a.data, &b.data, &mut out.data, n, k, m);
                }
            }
            return;
        }
        if lvl >= x86::LVL_SSE2 {
            // SAFETY: SSE2 verified by `x86::level`.
            unsafe { x86::t_matmul_sse2(&a.data, &b.data, &mut out.data, n, k, m) };
            return;
        }
    }
    let _ = mode;
    portable::t_matmul(&a.data, &b.data, &mut out.data, n, k, m);
}

/// `out = a @ b^T`. Strict mode keeps a single sequential accumulator per
/// element (vector lanes cannot help without reassociating), so it stays
/// on the portable 8-wide unrolled dot. Fast mode uses 4 independent
/// 8-lane FMA accumulators with a fixed-order reduction.
fn matmul_t_kernel(a: &Matrix, b: &Matrix, out: &mut Matrix, mode: MatmulMode) {
    let (n, k, m) = (a.rows, a.cols, b.rows);
    #[cfg(target_arch = "x86_64")]
    if mode == MatmulMode::Fast && x86::level() >= x86::LVL_AVX2_FMA {
        // SAFETY: AVX2+FMA verified by `x86::level`.
        unsafe { x86::matmul_t_avx2_fma(&a.data, &b.data, &mut out.data, n, k, m) };
        return;
    }
    let _ = mode;
    portable::matmul_t(&a.data, &b.data, &mut out.data, n, k, m);
}

// ---- portable kernels -----------------------------------------------------

/// Cache-block edge for the portable kernels: 64×64 f32 tiles (16 KiB per
/// operand) fit in L1 alongside the streamed operand.
const BLOCK: usize = 64;

mod portable {
    use super::BLOCK;

    /// Blocked ikj matmul; ascending-`k` accumulation per element, so
    /// bitwise identical to the naive triple loop.
    pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        for i0 in (0..n).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(n);
            for k0 in (0..k).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(k);
                for i in i0..i1 {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * m..(i + 1) * m];
                    for (kk, &av) in a_row.iter().enumerate().take(k1).skip(k0) {
                        axpy(out_row, av, &b[kk * m..(kk + 1) * m]);
                    }
                }
            }
        }
    }

    /// Blocked kij transpose-matmul; same ascending-`k` order as naive.
    pub fn t_matmul(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i0 in (0..n).step_by(BLOCK) {
                let i1 = (i0 + BLOCK).min(n);
                for kk in k0..k1 {
                    let a_row = &a[kk * n..(kk + 1) * n];
                    let b_row = &b[kk * m..(kk + 1) * m];
                    for (i, &av) in a_row.iter().enumerate().take(i1).skip(i0) {
                        axpy(&mut out[i * m..(i + 1) * m], av, b_row);
                    }
                }
            }
        }
    }

    /// Blocked dot-product matmul against `b^T`; single sequential
    /// accumulator per element (bitwise identical to naive).
    pub fn matmul_t(a: &[f32], b: &[f32], out: &mut [f32], n: usize, k: usize, m: usize) {
        for i0 in (0..n).step_by(BLOCK) {
            let i1 = (i0 + BLOCK).min(n);
            for j0 in (0..m).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(m);
                for i in i0..i1 {
                    let a_row = &a[i * k..(i + 1) * k];
                    for j in j0..j1 {
                        out[i * m + j] = dot(a_row, &b[j * k..(j + 1) * k]);
                    }
                }
            }
        }
    }

    /// `out[j] += a * b[j]`, unrolled 8-wide. Each `out[j]` receives
    /// exactly one add, so this is bitwise equivalent to the scalar loop.
    #[inline]
    pub fn axpy(out: &mut [f32], a: f32, b: &[f32]) {
        let n = out.len();
        let n8 = n / 8 * 8;
        let (o8, o_tail) = out.split_at_mut(n8);
        let (b8, b_tail) = b[..n].split_at(n8);
        for (oc, bc) in o8.chunks_exact_mut(8).zip(b8.chunks_exact(8)) {
            oc[0] += a * bc[0];
            oc[1] += a * bc[1];
            oc[2] += a * bc[2];
            oc[3] += a * bc[3];
            oc[4] += a * bc[4];
            oc[5] += a * bc[5];
            oc[6] += a * bc[6];
            oc[7] += a * bc[7];
        }
        for (o, &bb) in o_tail.iter_mut().zip(b_tail) {
            *o += a * bb;
        }
    }

    /// Sequential-order dot product, unrolled 8-wide into a single
    /// accumulator (no partial-sum reassociation: the float result
    /// matches the naive `for kk { acc += a[kk] * b[kk] }` loop exactly).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n8 = a.len() / 8 * 8;
        let (a8, a_tail) = a.split_at(n8);
        let (b8, b_tail) = b[..a.len()].split_at(n8);
        let mut acc = 0.0f32;
        for (ac, bc) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
            acc += ac[0] * bc[0];
            acc += ac[1] * bc[1];
            acc += ac[2] * bc[2];
            acc += ac[3] * bc[3];
            acc += ac[4] * bc[4];
            acc += ac[5] * bc[5];
            acc += ac[6] * bc[6];
            acc += ac[7] * bc[7];
        }
        for (&x, &y) in a_tail.iter().zip(b_tail) {
            acc += x * y;
        }
        acc
    }
}

// ---- x86-64 SIMD kernels --------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    pub const LVL_SSE2: u8 = 2;
    pub const LVL_AVX2: u8 = 3;
    pub const LVL_AVX2_FMA: u8 = 4;
    const LVL_NONE: u8 = 1;
    const LVL_UNKNOWN: u8 = 0;

    static LEVEL: AtomicU8 = AtomicU8::new(LVL_UNKNOWN);

    /// Widest supported kernel tier, detected once and cached.
    pub fn level() -> u8 {
        match LEVEL.load(Ordering::Relaxed) {
            LVL_UNKNOWN => {
                let l = if is_x86_feature_detected!("avx2") {
                    if is_x86_feature_detected!("fma") {
                        LVL_AVX2_FMA
                    } else {
                        LVL_AVX2
                    }
                } else if is_x86_feature_detected!("sse2") {
                    LVL_SSE2
                } else {
                    LVL_NONE
                };
                LEVEL.store(l, Ordering::Relaxed);
                l
            }
            l => l,
        }
    }

    /// Strict multiply-add: two roundings, exactly like the scalar loop.
    macro_rules! madd256_strict {
        ($x:expr, $y:expr, $acc:expr) => {
            _mm256_add_ps($acc, _mm256_mul_ps($x, $y))
        };
    }
    /// Fused multiply-add: one rounding (Fast mode only).
    macro_rules! madd256_fma {
        ($x:expr, $y:expr, $acc:expr) => {
            _mm256_fmadd_ps($x, $y, $acc)
        };
    }

    /// `a[i][kk]` for the row-major `n x k` left operand of `matmul`.
    macro_rules! aload_row {
        ($a:ident, $i:ident, $kk:ident, $k:ident, $n:ident) => {
            *$a.get_unchecked($i * $k + $kk)
        };
    }
    /// `a[kk][i]` for the `k x n` left operand of `t_matmul`.
    macro_rules! aload_col {
        ($a:ident, $i:ident, $kk:ident, $k:ident, $n:ident) => {
            *$a.get_unchecked($kk * $n + $i)
        };
    }

    /// Register-blocked AVX2 panel kernel over 32 output columns (4 ymm
    /// accumulators), then an 8-wide panel, then scalar tail columns.
    /// Each output element accumulates its `k` terms in ascending order
    /// into a register, so the strict variant is bitwise identical to the
    /// naive loop; the FMA variant contracts mul+add into one rounding.
    macro_rules! panel_kernel_256 {
        ($name:ident, [$($feat:literal),+], $madd:ident, $aload:ident) => {
            /// # Safety
            /// Caller must verify the listed target features at runtime and
            /// pass slices of length `n*k` / `k*m` / `n*m` with `out` zeroed.
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn $name(
                a: &[f32],
                b: &[f32],
                out: &mut [f32],
                n: usize,
                k: usize,
                m: usize,
            ) {
                debug_assert!(b.len() >= k * m && out.len() >= n * m);
                let bp = b.as_ptr();
                let op = out.as_mut_ptr();
                let mut j = 0usize;
                while j + 32 <= m {
                    for i in 0..n {
                        let mut c0 = _mm256_setzero_ps();
                        let mut c1 = _mm256_setzero_ps();
                        let mut c2 = _mm256_setzero_ps();
                        let mut c3 = _mm256_setzero_ps();
                        for kk in 0..k {
                            let av = _mm256_set1_ps($aload!(a, i, kk, k, n));
                            let bb = bp.add(kk * m + j);
                            c0 = $madd!(av, _mm256_loadu_ps(bb), c0);
                            c1 = $madd!(av, _mm256_loadu_ps(bb.add(8)), c1);
                            c2 = $madd!(av, _mm256_loadu_ps(bb.add(16)), c2);
                            c3 = $madd!(av, _mm256_loadu_ps(bb.add(24)), c3);
                        }
                        let o = op.add(i * m + j);
                        _mm256_storeu_ps(o, c0);
                        _mm256_storeu_ps(o.add(8), c1);
                        _mm256_storeu_ps(o.add(16), c2);
                        _mm256_storeu_ps(o.add(24), c3);
                    }
                    j += 32;
                }
                while j + 8 <= m {
                    for i in 0..n {
                        let mut c0 = _mm256_setzero_ps();
                        for kk in 0..k {
                            let av = _mm256_set1_ps($aload!(a, i, kk, k, n));
                            c0 = $madd!(av, _mm256_loadu_ps(bp.add(kk * m + j)), c0);
                        }
                        _mm256_storeu_ps(op.add(i * m + j), c0);
                    }
                    j += 8;
                }
                scalar_tail_cols(b, out, n, k, m, j, |i, kk| $aload!(a, i, kk, k, n));
            }
        };
    }

    panel_kernel_256!(matmul_avx2, ["avx2"], madd256_strict, aload_row);
    panel_kernel_256!(matmul_avx2_fma, ["avx2", "fma"], madd256_fma, aload_row);
    panel_kernel_256!(t_matmul_avx2, ["avx2"], madd256_strict, aload_col);
    panel_kernel_256!(t_matmul_avx2_fma, ["avx2", "fma"], madd256_fma, aload_col);

    /// SSE2 variant of the panel kernel: 16 output columns per pass
    /// (4 xmm accumulators), then 4-wide, then scalar tail. Strict only —
    /// same two-rounding multiply-add order as the naive loop.
    macro_rules! panel_kernel_128 {
        ($name:ident, $aload:ident) => {
            /// # Safety
            /// Caller must verify SSE2 at runtime and pass slices of length
            /// `n*k` / `k*m` / `n*m` with `out` zeroed.
            #[target_feature(enable = "sse2")]
            pub unsafe fn $name(
                a: &[f32],
                b: &[f32],
                out: &mut [f32],
                n: usize,
                k: usize,
                m: usize,
            ) {
                debug_assert!(b.len() >= k * m && out.len() >= n * m);
                let bp = b.as_ptr();
                let op = out.as_mut_ptr();
                let mut j = 0usize;
                while j + 16 <= m {
                    for i in 0..n {
                        let mut c0 = _mm_setzero_ps();
                        let mut c1 = _mm_setzero_ps();
                        let mut c2 = _mm_setzero_ps();
                        let mut c3 = _mm_setzero_ps();
                        for kk in 0..k {
                            let av = _mm_set1_ps($aload!(a, i, kk, k, n));
                            let bb = bp.add(kk * m + j);
                            c0 = _mm_add_ps(c0, _mm_mul_ps(av, _mm_loadu_ps(bb)));
                            c1 = _mm_add_ps(c1, _mm_mul_ps(av, _mm_loadu_ps(bb.add(4))));
                            c2 = _mm_add_ps(c2, _mm_mul_ps(av, _mm_loadu_ps(bb.add(8))));
                            c3 = _mm_add_ps(c3, _mm_mul_ps(av, _mm_loadu_ps(bb.add(12))));
                        }
                        let o = op.add(i * m + j);
                        _mm_storeu_ps(o, c0);
                        _mm_storeu_ps(o.add(4), c1);
                        _mm_storeu_ps(o.add(8), c2);
                        _mm_storeu_ps(o.add(12), c3);
                    }
                    j += 16;
                }
                while j + 4 <= m {
                    for i in 0..n {
                        let mut c0 = _mm_setzero_ps();
                        for kk in 0..k {
                            let av = _mm_set1_ps($aload!(a, i, kk, k, n));
                            c0 = _mm_add_ps(c0, _mm_mul_ps(av, _mm_loadu_ps(bp.add(kk * m + j))));
                        }
                        _mm_storeu_ps(op.add(i * m + j), c0);
                    }
                    j += 4;
                }
                scalar_tail_cols(b, out, n, k, m, j, |i, kk| $aload!(a, i, kk, k, n));
            }
        };
    }

    panel_kernel_128!(matmul_sse2, aload_row);
    panel_kernel_128!(t_matmul_sse2, aload_col);

    /// Scalar fallback for the last `m - j0` output columns: single
    /// accumulator over ascending `kk` per element, matching naive.
    #[inline]
    fn scalar_tail_cols(
        b: &[f32],
        out: &mut [f32],
        n: usize,
        k: usize,
        m: usize,
        j0: usize,
        aload: impl Fn(usize, usize) -> f32,
    ) {
        for j in j0..m {
            for i in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += aload(i, kk) * b[kk * m + j];
                }
                out[i * m + j] = acc;
            }
        }
    }

    /// Fast-mode `a @ b^T`: 4 independent 8-lane FMA accumulators per dot
    /// product, reduced in a fixed order (deterministic, but reassociated —
    /// never used in strict mode).
    ///
    /// # Safety
    /// Caller must verify AVX2+FMA at runtime and pass slices of length
    /// `n*k` / `m*k` / `n*m`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_t_avx2_fma(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        n: usize,
        k: usize,
        m: usize,
    ) {
        debug_assert!(a.len() >= n * k && b.len() >= m * k && out.len() >= n * m);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..n {
            let ar = ap.add(i * k);
            for j in 0..m {
                let br = bp.add(j * k);
                let mut c0 = _mm256_setzero_ps();
                let mut c1 = _mm256_setzero_ps();
                let mut c2 = _mm256_setzero_ps();
                let mut c3 = _mm256_setzero_ps();
                let mut kk = 0usize;
                while kk + 32 <= k {
                    c0 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ar.add(kk)),
                        _mm256_loadu_ps(br.add(kk)),
                        c0,
                    );
                    c1 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ar.add(kk + 8)),
                        _mm256_loadu_ps(br.add(kk + 8)),
                        c1,
                    );
                    c2 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ar.add(kk + 16)),
                        _mm256_loadu_ps(br.add(kk + 16)),
                        c2,
                    );
                    c3 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ar.add(kk + 24)),
                        _mm256_loadu_ps(br.add(kk + 24)),
                        c3,
                    );
                    kk += 32;
                }
                while kk + 8 <= k {
                    c0 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(ar.add(kk)),
                        _mm256_loadu_ps(br.add(kk)),
                        c0,
                    );
                    kk += 8;
                }
                let v = _mm256_add_ps(_mm256_add_ps(c0, c1), _mm256_add_ps(c2, c3));
                let mut lanes = [0.0f32; 8];
                _mm256_storeu_ps(lanes.as_mut_ptr(), v);
                let mut acc = 0.0f32;
                for &l in &lanes {
                    acc += l;
                }
                while kk < k {
                    acc += *ar.add(kk) * *br.add(kk);
                    kk += 1;
                }
                out[i * m + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.5, -1.0, 2.0, 0.0, 3.0]);
        // a^T @ b computed by hand: a^T is 2x3.
        let at = Matrix::from_vec(2, 3, vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]);
        assert_eq!(a.t_matmul(&b), at.matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let bt = Matrix::from_vec(
            3,
            4,
            vec![0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(a.matmul_t(&b), a.matmul(&bt));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Deterministic pseudo-random fill with exact zeros sprinkled in so
    /// the kernels see the same value mix the old zero-skip path did.
    fn filled(rows: usize, cols: usize, salt: u32) -> Matrix {
        let mut x = salt.wrapping_mul(2654435761).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                if x.is_multiple_of(7) {
                    0.0
                } else {
                    ((x >> 8) % 2003) as f32 / 1001.0 - 1.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// The plain ikj loop, kept as the bitwise reference. Note there is no
    /// zero-skip: for finite inputs skipping `av == 0.0` is bitwise
    /// neutral (a partial sum seeded at +0.0 stays unchanged under
    /// `s += 0.0 * b`), so the old skipping reference pinned the same
    /// bits this one does — but the branch made kernel cost
    /// data-dependent and blocked vectorization, so the kernels dropped it.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, k, m) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for kk in 0..k {
                let av = a.get(i, kk);
                for j in 0..m {
                    out.data[i * m + j] += av * b.get(kk, j);
                }
            }
        }
        out
    }

    fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let (k, n, m) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(n, m);
        for kk in 0..k {
            for i in 0..n {
                let av = a.get(kk, i);
                for j in 0..m {
                    out.data[i * m + j] += av * b.get(kk, j);
                }
            }
        }
        out
    }

    fn naive_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
        let (n, k, m) = (a.rows, a.cols, b.rows);
        let mut out = Matrix::zeros(n, m);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(j, kk);
                }
                out.data[i * m + j] = acc;
            }
        }
        out
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "element {i}: {x} vs {y}");
        }
    }

    /// Shapes straddling the 32-wide AVX2 panel, the 8-wide sub-panel, the
    /// scalar column tail, and the 64-wide portable block edge.
    const SHAPES: [(usize, usize, usize); 9] = [
        (1, 1, 1),
        (3, 5, 2),
        (17, 64, 9),
        (65, 63, 66),
        (70, 129, 67),
        (2, 3, 33),
        (5, 40, 8),
        (1, 130, 1),
        (33, 7, 40),
    ];

    #[test]
    fn strict_matmul_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(n, k, si as u32);
            let b = filled(k, m, 100 + si as u32);
            assert_bits_eq(
                &a.matmul_with_mode(&b, MatmulMode::Strict),
                &naive_matmul(&a, &b),
            );
        }
    }

    #[test]
    fn strict_t_matmul_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(k, n, 200 + si as u32);
            let b = filled(k, m, 300 + si as u32);
            assert_bits_eq(
                &a.t_matmul_with_mode(&b, MatmulMode::Strict),
                &naive_t_matmul(&a, &b),
            );
        }
    }

    #[test]
    fn strict_matmul_t_is_bitwise_identical_to_naive() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(n, k, 400 + si as u32);
            let b = filled(m, k, 500 + si as u32);
            assert_bits_eq(
                &a.matmul_t_with_mode(&b, MatmulMode::Strict),
                &naive_matmul_t(&a, &b),
            );
        }
    }

    #[test]
    fn fast_mode_stays_close_to_strict() {
        for (si, &(n, k, m)) in SHAPES.iter().enumerate() {
            let a = filled(n, k, 600 + si as u32);
            let b = filled(k, m, 700 + si as u32);
            let strict = a.matmul_with_mode(&b, MatmulMode::Strict);
            let fast = a.matmul_with_mode(&b, MatmulMode::Fast);
            for (x, y) in strict.data.iter().zip(&fast.data) {
                let tol = 1e-5 * x.abs().max(1.0);
                assert!((x - y).abs() <= tol, "strict {x} vs fast {y}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let a = filled(7, 33, 1);
        let b = filled(33, 19, 2);
        let mut out = Matrix::from_vec(7, 19, vec![f32::NAN; 7 * 19]);
        a.matmul_into(&b, &mut out);
        assert_bits_eq(&out, &naive_matmul(&a, &b));
    }

    #[test]
    fn default_mode_is_strict_without_env_override() {
        if std::env::var("SPG_FAST_MATH").is_err() {
            assert_eq!(matmul_mode(), MatmulMode::Strict);
        }
    }

    #[test]
    fn add_row_and_activations_in_place() {
        let mut m = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, -0.25, 0.0, 1.5]);
        m.add_row_assign(&Matrix::from_vec(1, 3, vec![0.5, 1.0, -2.0]));
        assert_eq!(m.data, vec![1.0, 0.0, 0.0, 0.25, 1.0, -0.5]);
        let mut r = m.clone();
        r.relu_assign();
        assert_eq!(r.data, vec![1.0, 0.0, 0.0, 0.25, 1.0, 0.0]);
        let mut t = m.clone();
        t.tanh_assign();
        assert_eq!(t.data[0].to_bits(), 1.0f32.tanh().to_bits());
        let mut s = m.clone();
        s.sigmoid_assign();
        assert_eq!(s.data[0].to_bits(), stable_sigmoid(1.0).to_bits());
    }

    #[test]
    fn norm_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![6.0, 8.0]);
    }
}
