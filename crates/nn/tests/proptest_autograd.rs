//! Property-based gradient checks: random small networks built from random
//! op sequences must match finite differences, and optimizer steps must
//! keep parameters finite.

use proptest::prelude::*;
use spg_nn::{Adam, Matrix, Param, ParamSet, Tape, Var};

/// The ops the fuzzer can chain (all unary shape-preserving or reductions).
#[derive(Debug, Clone, Copy)]
enum FuzzOp {
    Tanh,
    Sigmoid,
    Relu,
    ScaleHalf,
    MulSelf,
    SoftmaxRows,
}

fn apply(t: &mut Tape, op: FuzzOp, x: Var) -> Var {
    match op {
        FuzzOp::Tanh => t.tanh(x),
        FuzzOp::Sigmoid => t.sigmoid(x),
        FuzzOp::Relu => t.relu(x),
        FuzzOp::ScaleHalf => t.scale(x, 0.5),
        FuzzOp::MulSelf => t.mul(x, x),
        FuzzOp::SoftmaxRows => t.row_softmax(x),
    }
}

fn op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        Just(FuzzOp::Tanh),
        Just(FuzzOp::Sigmoid),
        // ReLU excluded from grad-check chains: its kink breaks central
        // differences when an activation sits near zero.
        Just(FuzzOp::ScaleHalf),
        Just(FuzzOp::MulSelf),
        Just(FuzzOp::SoftmaxRows),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chains of smooth ops over a parameter match finite differences.
    #[test]
    fn random_chains_match_finite_differences(
        ops in prop::collection::vec(op_strategy(), 1..5),
        vals in prop::collection::vec(-1.5f32..1.5, 6),
    ) {
        let p = Param::new(Matrix::from_vec(2, 3, vals.clone()));
        let f = |t: &mut Tape| {
            let mut x = t.param(&p);
            for &op in &ops {
                x = apply(t, op, x);
            }
            t.sum_all(x)
        };

        p.zero_grad();
        let mut tape = Tape::new();
        let loss = f(&mut tape);
        tape.backward(loss);
        let analytic = p.0.borrow().grad.clone();

        let eps = 1e-2f32;
        let base = p.value();
        for i in 0..base.data.len() {
            let mut up = base.clone();
            up.data[i] += eps;
            p.set_value(up);
            let mut t1 = Tape::new();
            let l1 = f(&mut t1);
            let f1 = t1.value(l1).item();

            let mut dn = base.clone();
            dn.data[i] -= eps;
            p.set_value(dn);
            let mut t2 = Tape::new();
            let l2 = f(&mut t2);
            let f2 = t2.value(l2).item();
            p.set_value(base.clone());

            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data[i];
            prop_assert!(
                (a - numeric).abs() <= 0.05 * (1.0 + numeric.abs()),
                "grad[{}] analytic {} vs numeric {} (ops {:?})", i, a, numeric, ops
            );
        }
    }

    /// ReLU chains stay internally consistent even though they are
    /// excluded from central-difference checks (kink at zero): forward and
    /// backward agree with an explicit mask.
    #[test]
    fn relu_masks_gradient(vals in prop::collection::vec(-2.0f32..2.0, 6)) {
        let p = Param::new(Matrix::from_vec(2, 3, vals.clone()));
        p.zero_grad();
        let mut t = Tape::new();
        let x = t.param(&p);
        let y = apply(&mut t, FuzzOp::Relu, x);
        let loss = t.sum_all(y);
        t.backward(loss);
        let grad = p.0.borrow().grad.clone();
        for (g, &v) in grad.data.iter().zip(&vals) {
            let expect = if v > 0.0 { 1.0 } else { 0.0 };
            prop_assert!((g - expect).abs() < 1e-6);
        }
    }

    /// Adam keeps everything finite for arbitrary gradients.
    #[test]
    fn adam_stays_finite(grads in prop::collection::vec(-1e6f32..1e6, 4)) {
        let mut set = ParamSet::new();
        let p = set.register(Param::new(Matrix::zeros(2, 2)));
        let mut adam = Adam::new(0.01);
        for _ in 0..5 {
            p.0.borrow_mut().grad = Matrix::from_vec(2, 2, grads.clone());
            adam.step(&set);
        }
        prop_assert!(p.value().is_finite());
    }

    /// Bernoulli log-prob is always non-positive and finite.
    #[test]
    fn bernoulli_log_prob_bounds(
        logits in prop::collection::vec(-20.0f32..20.0, 1..16),
        mask in any::<u16>(),
    ) {
        let actions: Vec<f32> = (0..logits.len())
            .map(|i| if mask & (1 << (i % 16)) != 0 { 1.0 } else { 0.0 })
            .collect();
        let mut t = Tape::new();
        let z = t.input(Matrix::from_vec(logits.len(), 1, logits));
        let ll = t.bernoulli_log_prob(z, &actions);
        let v = t.value(ll).item();
        prop_assert!(v.is_finite() && v <= 1e-6, "log prob {}", v);
    }

    /// Categorical log-prob equals the log of the softmax probability.
    #[test]
    fn categorical_log_prob_consistent(
        row in prop::collection::vec(-5.0f32..5.0, 2..8),
        pick in any::<prop::sample::Index>(),
    ) {
        let k = row.len();
        let action = pick.index(k) as u32;
        let mut t = Tape::new();
        let z = t.input(Matrix::from_vec(1, k, row.clone()));
        let sm = t.row_softmax(z);
        let prob = t.value(sm).get(0, action as usize);
        let z2 = t.input(Matrix::from_vec(1, k, row));
        let ll = t.categorical_log_prob(z2, &[action]);
        prop_assert!(
            (t.value(ll).item() - prob.ln()).abs() < 1e-4,
            "ll {} vs ln(p) {}", t.value(ll).item(), prob.ln()
        );
    }

    /// Segment-mean backward conserves gradient mass: the sum of input
    /// grads equals the sum of output grads (means weight by 1/count but
    /// each segment receives count copies).
    #[test]
    fn segment_mean_grad_mass(seg_raw in prop::collection::vec(0u32..4, 1..12)) {
        let n = seg_raw.len();
        let p = Param::new(Matrix::from_vec(n, 2, vec![0.5; n * 2]));
        p.zero_grad();
        let mut t = Tape::new();
        let x = t.param(&p);
        let pooled = t.segment_mean(x, &seg_raw, 4);
        let loss = t.sum_all(pooled);
        t.backward(loss);
        let grad = p.0.borrow().grad.clone();
        // Each non-empty segment contributes exactly 1.0 per column.
        let distinct: std::collections::HashSet<u32> = seg_raw.iter().copied().collect();
        let expected = distinct.len() as f32 * 2.0;
        let total: f32 = grad.data.iter().sum();
        prop_assert!((total - expected).abs() < 1e-4, "mass {} vs {}", total, expected);
    }
}
