//! Randomized kernel properties with shrinking.
//!
//! The vendored mini-proptest has no shrinker, so these tests hand-roll
//! one: cases are drawn from a seeded stream (reproducible run-to-run),
//! and on failure the dimensions are shrunk toward the smallest failing
//! `(n, k, m)` before panicking — the report names dims and the data
//! seed, which replays the exact case.
//!
//! Properties:
//! * strict-mode `matmul` / `t_matmul` / `matmul_t` are **bitwise**
//!   identical to the naive reference loops (single accumulator,
//!   ascending inner index, no zero-skip) across ragged shapes;
//! * fast-mode results stay within 1e-5 relative error of an f64
//!   reference.

use proptest::TestRng;
use spg_nn::{MatmulMode, Matrix};

/// Ragged-leaning dimension pool: 1 and Nx1/1xN shapes, non-multiples of
/// 8, and sizes straddling the 32-wide panel and 64-wide cache block.
const DIMS: &[usize] = &[
    1, 2, 3, 5, 7, 8, 9, 15, 17, 31, 32, 33, 40, 63, 64, 65, 70, 129,
];

fn draw_dim(rng: &mut TestRng) -> usize {
    if rng.below(4) == 0 {
        rng.below(70) as usize + 1
    } else {
        DIMS[rng.below(DIMS.len() as u64) as usize]
    }
}

/// Deterministic fill for a given seed: mostly uniform in [-2, 2], with
/// exact zeros mixed in (the kernels must not special-case them — see
/// the zero-skip removal note in `matrix.rs`) and exact powers of two.
fn fill(rows: usize, cols: usize, rng: &mut TestRng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => [-1.0f32, 0.5, 2.0, -0.25][rng.below(4) as usize],
            _ => (rng.unit_f64() * 4.0 - 2.0) as f32,
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for j in 0..b.cols {
            let mut s = 0.0f32;
            for kk in 0..a.cols {
                s += a.get(i, kk) * b.get(kk, j);
            }
            out.set(i, j, s);
        }
    }
    out
}

fn naive_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols, b.cols);
    for i in 0..a.cols {
        for j in 0..b.cols {
            let mut s = 0.0f32;
            for kk in 0..a.rows {
                s += a.get(kk, i) * b.get(kk, j);
            }
            out.set(i, j, s);
        }
    }
    out
}

fn naive_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.rows);
    for i in 0..a.rows {
        for j in 0..b.rows {
            let mut s = 0.0f32;
            for kk in 0..a.cols {
                s += a.get(i, kk) * b.get(j, kk);
            }
            out.set(i, j, s);
        }
    }
    out
}

/// f64 reference of `a @ b` for the fast-mode error bound.
fn f64_matmul(a: &Matrix, b: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0f64; a.rows * b.cols];
    for i in 0..a.rows {
        for j in 0..b.cols {
            for kk in 0..a.cols {
                out[i * b.cols + j] += a.get(i, kk) as f64 * b.get(kk, j) as f64;
            }
        }
    }
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.data.iter().map(|x| x.to_bits()).collect()
}

/// One strict-mode case: all three kernels, bitwise against naive.
fn check_strict(n: usize, k: usize, m: usize, seed: u64) -> Result<(), String> {
    let mut rng = TestRng::new(seed);
    let a = fill(n, k, &mut rng);
    let b = fill(k, m, &mut rng);
    if bits(&a.matmul_with_mode(&b, MatmulMode::Strict)) != bits(&naive_matmul(&a, &b)) {
        return Err("matmul".into());
    }
    let at = fill(k, n, &mut rng);
    if bits(&at.t_matmul_with_mode(&b, MatmulMode::Strict)) != bits(&naive_t_matmul(&at, &b)) {
        return Err("t_matmul".into());
    }
    let bt = fill(m, k, &mut rng);
    if bits(&a.matmul_t_with_mode(&bt, MatmulMode::Strict)) != bits(&naive_matmul_t(&a, &bt)) {
        return Err("matmul_t".into());
    }
    Ok(())
}

/// One fast-mode case: ≤1e-5 relative error against the f64 reference.
/// (`t_matmul`/`matmul_t` fast modes reduce to the same FMA building
/// blocks; `matmul` vs its transposed-operand identities covers them.)
fn check_fast(n: usize, k: usize, m: usize, seed: u64) -> Result<(), String> {
    let mut rng = TestRng::new(seed);
    let a = fill(n, k, &mut rng);
    let b = fill(k, m, &mut rng);
    let reference = f64_matmul(&a, &b);
    for (op, got) in [
        ("matmul", a.matmul_with_mode(&b, MatmulMode::Fast)),
        // a^T^T @ b and a @ b^T^T hit the dedicated transpose kernels.
        (
            "t_matmul",
            transpose(&a).t_matmul_with_mode(&b, MatmulMode::Fast),
        ),
        (
            "matmul_t",
            a.matmul_t_with_mode(&transpose(&b), MatmulMode::Fast),
        ),
    ] {
        for (x, &r) in got.data.iter().zip(&reference) {
            let err = (*x as f64 - r).abs();
            if err > 1e-5 * r.abs().max(1.0) {
                return Err(format!("{op}: |{x} - {r}| = {err:.3e}"));
            }
        }
    }
    Ok(())
}

fn transpose(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.cols, m.rows);
    for i in 0..m.rows {
        for j in 0..m.cols {
            out.set(j, i, m.get(i, j));
        }
    }
    out
}

/// Shrink a failing `(n, k, m)` toward minimal: repeatedly halve, then
/// decrement, each dimension while the case still fails.
fn shrink(
    mut dims: [usize; 3],
    seed: u64,
    check: &dyn Fn(usize, usize, usize, u64) -> Result<(), String>,
) -> [usize; 3] {
    let fails = |d: [usize; 3]| check(d[0], d[1], d[2], seed).is_err();
    loop {
        let mut shrunk = false;
        for i in 0..3 {
            while dims[i] > 1 {
                let mut cand = dims;
                cand[i] = (dims[i] / 2).max(1);
                if cand[i] == dims[i] || !fails(cand) {
                    break;
                }
                dims = cand;
                shrunk = true;
            }
            let mut cand = dims;
            if cand[i] > 1 {
                cand[i] -= 1;
                if fails(cand) {
                    dims = cand;
                    shrunk = true;
                }
            }
        }
        if !shrunk {
            return dims;
        }
    }
}

fn run_cases(
    name: &str,
    cases: u64,
    check: impl Fn(usize, usize, usize, u64) -> Result<(), String>,
) {
    let mut rng = TestRng::new(proptest::seed_of(name));
    for case in 0..cases {
        let (n, k, m) = (draw_dim(&mut rng), draw_dim(&mut rng), draw_dim(&mut rng));
        let seed = rng.next_u64();
        if let Err(msg) = check(n, k, m, seed) {
            let min = shrink([n, k, m], seed, &check);
            panic!(
                "{name} case {case}: {msg} at dims {n}x{k}x{m} (seed {seed}); \
                 shrunk to {}x{}x{}",
                min[0], min[1], min[2]
            );
        }
    }
}

#[test]
fn strict_kernels_match_naive_bitwise() {
    run_cases("strict_kernels_match_naive_bitwise", 150, check_strict);
}

#[test]
fn fast_kernels_within_relative_error() {
    run_cases("fast_kernels_within_relative_error", 150, check_fast);
}

/// The classic ragged pins, explicitly: row/column vectors and widths
/// just off the 8/32-lane boundaries, in both modes.
#[test]
fn ragged_shape_pins() {
    for &(n, k, m) in &[
        (1, 130, 1),
        (1, 1, 130),
        (130, 1, 1),
        (1, 7, 9),
        (9, 7, 1),
        (3, 33, 31),
        (33, 31, 33),
    ] {
        check_strict(n, k, m, 42).unwrap_or_else(|op| panic!("strict {op} at {n}x{k}x{m}"));
        check_fast(n, k, m, 42).unwrap_or_else(|msg| panic!("fast at {n}x{k}x{m}: {msg}"));
    }
}
