//! The one place serve-side failures are named.
//!
//! Every error the server can put on the wire is a [`ServeError`]
//! variant; the wire spelling comes from converting to
//! [`WireError`], whose [`WireError::CODES`] table is the single source
//! of truth for the names. `server.rs`, `router.rs`, `replica.rs`, and
//! `bench.rs` construct these instead of ad-hoc strings, so a grep for
//! `"overloaded"` finds exactly one definition.

use spg_graph::wire::{ErrorResponse, WireError};
use std::fmt;

/// A request-level failure with enough context to render the wire
/// detail message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Not valid JSON / not a valid request (detail from the parser).
    BadRequest(String),
    /// Structurally or numerically invalid graph.
    InvalidGraph(String),
    /// The request out-waited its deadline in the queue.
    Timeout { waited_ms: u128, deadline_ms: u64 },
    /// The request's own `deadline_ms` budget lapsed before a replica
    /// reached it; it was shed before inference.
    DeadlineExceeded { waited_ms: u128, deadline_ms: u64 },
    /// The shard's bounded queue was full — backpressure, not buffering.
    Overloaded { queue_capacity: usize },
    /// The server is draining; no new work is admitted.
    Draining,
    /// A server-side invariant broke (detail is diagnostic only).
    Internal(String),
    /// The request named a protocol version this server does not speak.
    UnsupportedVersion(String),
}

impl ServeError {
    /// The wire-protocol error, carrying the rendered detail message.
    pub fn to_wire(&self) -> WireError {
        match self {
            ServeError::BadRequest(d) => WireError::BadRequest(d.clone()),
            ServeError::InvalidGraph(d) => WireError::InvalidGraph(d.clone()),
            ServeError::Timeout {
                waited_ms,
                deadline_ms,
            } => WireError::Timeout(format!("queued {waited_ms} ms, deadline {deadline_ms} ms")),
            ServeError::DeadlineExceeded {
                waited_ms,
                deadline_ms,
            } => WireError::DeadlineExceeded(format!(
                "queued {waited_ms} ms past the request's {deadline_ms} ms budget"
            )),
            ServeError::Overloaded { queue_capacity } => {
                WireError::Overloaded(format!("request queue full ({queue_capacity} pending)"))
            }
            ServeError::Draining => WireError::Draining,
            ServeError::Internal(d) => WireError::Internal(d.clone()),
            ServeError::UnsupportedVersion(d) => WireError::UnsupportedVersion(d.clone()),
        }
    }

    /// The stable wire name (`bad-request`, `overloaded`, ...).
    pub fn code(&self) -> &'static str {
        self.to_wire().code()
    }

    /// The error response line to send back for request `id`.
    pub fn response(&self, id: Option<String>) -> ErrorResponse {
        self.to_wire().response(id)
    }
}

impl fmt::Display for ServeError {
    /// Displays as `<wire name>: <detail>` — the name is exactly what
    /// goes on the wire.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_wire())
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ServeError> {
        vec![
            ServeError::BadRequest("x".into()),
            ServeError::InvalidGraph("x".into()),
            ServeError::Timeout {
                waited_ms: 6000,
                deadline_ms: 5000,
            },
            ServeError::DeadlineExceeded {
                waited_ms: 300,
                deadline_ms: 250,
            },
            ServeError::Overloaded { queue_capacity: 64 },
            ServeError::Draining,
            ServeError::Internal("x".into()),
            ServeError::UnsupportedVersion("x".into()),
        ]
    }

    #[test]
    fn codes_are_pinned_to_the_wire_names() {
        let codes: Vec<&str> = all_variants().iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            vec![
                "bad-request",
                "invalid-graph",
                "timeout",
                "deadline-exceeded",
                "overloaded",
                "draining",
                "internal",
                "unsupported-version",
            ]
        );
        // One variant per wire code: the enum and the wire table cannot
        // drift apart silently.
        assert_eq!(codes.len(), WireError::CODES.len());
        for code in WireError::CODES {
            assert!(codes.contains(&code), "no ServeError variant for `{code}`");
        }
    }

    #[test]
    fn display_leads_with_the_wire_name() {
        for e in all_variants() {
            let text = e.to_string();
            assert!(
                text.starts_with(e.code()),
                "`{text}` must start with `{}`",
                e.code()
            );
        }
        assert_eq!(
            ServeError::Timeout {
                waited_ms: 6000,
                deadline_ms: 5000
            }
            .to_string(),
            "timeout: queued 6000 ms, deadline 5000 ms"
        );
        assert_eq!(
            ServeError::Overloaded { queue_capacity: 64 }.to_string(),
            "overloaded: request queue full (64 pending)"
        );
    }

    #[test]
    fn response_carries_the_request_id() {
        let resp = ServeError::Draining.response(Some("req-9".into()));
        assert_eq!(resp.id.as_deref(), Some("req-9"));
        assert_eq!(resp.error, "draining");
    }
}
