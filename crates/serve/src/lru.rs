//! Placement cache: bounded LRU keyed by a request content fingerprint.
//!
//! The serving path is a pure function of `(graph, devices,
//! source_rate)` — greedy decoding ignores the RNG and the Metis placer
//! seeds itself from the coarse graph's content — so a repeat request
//! can be answered from cache with the *bitwise identical* placement a
//! fresh inference would produce.

use spg_graph::{GraphDelta, StreamGraph};
use std::collections::{BTreeMap, HashMap};

/// FNV-1a content fingerprint of an allocation request: graph shape,
/// operator costs, edge endpoints, channel parameters, and the effective
/// device count and source rate. Same idiom as the coarse-graph
/// fingerprint seeding the Metis placer.
pub fn request_fingerprint(graph: &StreamGraph, devices: usize, source_rate: f64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(graph.num_nodes() as u64);
    mix(graph.num_edges() as u64);
    for op in graph.ops() {
        mix(op.ipt.to_bits());
    }
    for (&(a, b), ch) in graph.edge_list().iter().zip(graph.channels()) {
        mix(((a as u64) << 32) | b as u64);
        mix(ch.payload.to_bits());
        mix(ch.selectivity.to_bits());
    }
    mix(devices as u64);
    mix(source_rate.to_bits());
    h
}

/// Fingerprint of an incremental re-allocation request: the prior
/// request's fingerprint extended with the prior placement and the full
/// delta content. Reallocs therefore never collide with plain allocs
/// (the tag below separates the key spaces), and two reallocs share a
/// cache entry only when prior, placement, and delta all agree.
pub fn realloc_fingerprint(
    graph: &StreamGraph,
    prior_placement: &[u32],
    delta: &GraphDelta,
    devices: usize,
    source_rate: f64,
) -> u64 {
    let mut h = request_fingerprint(graph, devices, source_rate);
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(u64::from_be_bytes(*b"REALLOC\0"));
    mix(prior_placement.len() as u64);
    for &d in prior_placement {
        mix(d as u64);
    }
    mix(delta.remove_nodes.len() as u64);
    for &v in &delta.remove_nodes {
        mix(v as u64);
    }
    mix(delta.add_nodes.len() as u64);
    for op in &delta.add_nodes {
        mix(op.ipt.to_bits());
    }
    mix(delta.remove_edges.len() as u64);
    for &(a, b) in &delta.remove_edges {
        mix(((a as u64) << 32) | b as u64);
    }
    mix(delta.add_edges.len() as u64);
    for (&(a, b), ch) in delta.add_edges.iter().zip(&delta.add_channels) {
        mix(((a as u64) << 32) | b as u64);
        mix(ch.payload.to_bits());
        mix(ch.selectivity.to_bits());
    }
    mix(delta.set_ipt.len() as u64);
    for &(v, ipt) in &delta.set_ipt {
        mix(v as u64);
        mix(ipt.to_bits());
    }
    mix(delta.set_channel_edges.len() as u64);
    for (&(a, b), ch) in delta.set_channel_edges.iter().zip(&delta.set_channels) {
        mix(((a as u64) << 32) | b as u64);
        mix(ch.payload.to_bits());
        mix(ch.selectivity.to_bits());
    }
    mix(delta.devices.map_or(0, |d| d as u64 + 1));
    mix(delta.source_rate.map_or(0, f64::to_bits));
    h
}

/// Extend a request or realloc fingerprint with the int8-precision tag.
/// Quantized placements are deterministic but not bitwise equal to f32
/// ones, so an int8 cache entry must never answer an f32 request (or
/// vice versa): the tag separates the key spaces the same way the
/// `REALLOC\0` tag separates reallocs from plain allocs. The f32 path
/// applies no tag, so pre-existing f32 fingerprints are byte-for-byte
/// unchanged.
pub fn quantized_fingerprint(fingerprint: u64) -> u64 {
    let mut h = fingerprint;
    h ^= u64::from_be_bytes(*b"INT8\0\0\0\0");
    h.wrapping_mul(0x100000001b3)
}

/// Bounded least-recently-used cache with hit/miss accounting.
///
/// Recency is a strictly increasing stamp per access; the map from
/// stamp to key (a `BTreeMap`) makes eviction of the oldest entry
/// `O(log n)` without any vendored dependency.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, (u64, V)>,
    recency: BTreeMap<u64, u64>,
    stamp: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<V> LruCache<V> {
    /// Empty cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            stamp: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        match self.map.get_mut(&key) {
            Some((stamp, _)) => {
                self.hits += 1;
                self.recency.remove(stamp);
                self.stamp += 1;
                *stamp = self.stamp;
                self.recency.insert(self.stamp, key);
                self.map.get(&key).map(|(_, v)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `key`, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some((stamp, _)) = self.map.remove(&key) {
            self.recency.remove(&stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.recency.iter().next() {
                self.recency.remove(&oldest);
                self.map.remove(&victim);
            }
        }
        self.stamp += 1;
        self.recency.insert(self.stamp, key);
        self.map.insert(key, (self.stamp, value));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required fresh work.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_graph::{Channel, Operator, StreamGraphBuilder};

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(&10)); // refresh 1: now 2 is oldest
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.get(3), Some(&30));
        assert_eq!(c.len(), 2);
        assert_eq!((c.hits(), c.misses()), (3, 1));
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(&11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn fingerprint_separates_content_and_context() {
        let g1 = {
            let mut b = StreamGraphBuilder::new();
            let a = b.add_node(Operator::new(100.0));
            let c = b.add_node(Operator::new(200.0));
            b.add_edge(a, c, Channel::new(8.0)).unwrap();
            b.finish().unwrap()
        };
        let g2 = {
            let mut b = StreamGraphBuilder::new();
            let a = b.add_node(Operator::new(100.0));
            let c = b.add_node(Operator::new(201.0));
            b.add_edge(a, c, Channel::new(8.0)).unwrap();
            b.finish().unwrap()
        };
        let f = request_fingerprint(&g1, 4, 1e4);
        assert_eq!(f, request_fingerprint(&g1, 4, 1e4), "deterministic");
        assert_ne!(f, request_fingerprint(&g2, 4, 1e4), "content-sensitive");
        assert_ne!(f, request_fingerprint(&g1, 5, 1e4), "device-sensitive");
        assert_ne!(f, request_fingerprint(&g1, 4, 2e4), "rate-sensitive");
    }

    #[test]
    fn realloc_fingerprint_separates_placement_and_delta() {
        let g = {
            let mut b = StreamGraphBuilder::new();
            let a = b.add_node(Operator::new(100.0));
            let c = b.add_node(Operator::new(200.0));
            b.add_edge(a, c, Channel::new(8.0)).unwrap();
            b.finish().unwrap()
        };
        let empty = GraphDelta::default();
        let f = realloc_fingerprint(&g, &[0, 1], &empty, 4, 1e4);
        assert_eq!(f, realloc_fingerprint(&g, &[0, 1], &empty, 4, 1e4));
        assert_ne!(
            f,
            request_fingerprint(&g, 4, 1e4),
            "reallocs never collide with plain allocs"
        );
        assert_ne!(
            f,
            realloc_fingerprint(&g, &[1, 1], &empty, 4, 1e4),
            "placement-sensitive"
        );
        let ramp = GraphDelta {
            source_rate: Some(2e4),
            ..GraphDelta::default()
        };
        assert_ne!(
            f,
            realloc_fingerprint(&g, &[0, 1], &ramp, 4, 1e4),
            "delta-sensitive"
        );
    }

    #[test]
    fn quantized_fingerprint_never_collides_with_f32_key_space() {
        let g = {
            let mut b = StreamGraphBuilder::new();
            let a = b.add_node(Operator::new(100.0));
            let c = b.add_node(Operator::new(200.0));
            b.add_edge(a, c, Channel::new(8.0)).unwrap();
            b.finish().unwrap()
        };
        let f = request_fingerprint(&g, 4, 1e4);
        let q = quantized_fingerprint(f);
        assert_ne!(q, f, "int8 entries must never answer f32 requests");
        assert_eq!(q, quantized_fingerprint(f), "deterministic");
        let r = realloc_fingerprint(&g, &[0, 1], &GraphDelta::default(), 4, 1e4);
        assert_ne!(quantized_fingerprint(r), r);
        assert_ne!(quantized_fingerprint(r), q, "realloc/alloc stay separated");
    }

    #[test]
    fn per_precision_fingerprints_are_pinned() {
        // Pinned bytes: the cache key algorithm is part of the serve
        // protocol's determinism contract, so a change that silently
        // re-keys (and cold-starts) every deployed cache must fail here.
        let g = {
            let mut b = StreamGraphBuilder::new();
            let a = b.add_node(Operator::new(100.0));
            let c = b.add_node(Operator::new(200.0));
            b.add_edge(a, c, Channel::new(8.0)).unwrap();
            b.finish().unwrap()
        };
        let f = request_fingerprint(&g, 4, 1e4);
        assert_eq!(f, 0x3722c916c01aa983, "f32 key bytes changed");
        assert_eq!(
            quantized_fingerprint(f),
            0xed3899706d4e0999,
            "int8 key bytes changed"
        );
    }
}
