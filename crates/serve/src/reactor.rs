//! Minimal readiness reactor: `poll(2)` without libc.
//!
//! The vendored-deps constraint leaves no FFI layer, so readiness
//! notification is a raw `ppoll` syscall (inline asm on Linux
//! x86_64/aarch64) over `#[repr(C)]` pollfd records — exactly the ABI
//! structure the kernel reads. On any other target [`poll_fds`] degrades
//! to a short sleep that reports every descriptor ready; all socket
//! operations in this crate are nonblocking, so a spurious "ready" costs
//! one `EWOULDBLOCK` and nothing else.
//!
//! [`WakePipe`] is the cross-thread wakeup primitive: replica threads
//! hold a [`Waker`] (one byte written into a nonblocking socketpair) and
//! the I/O loop keeps the read end in its poll set, so a completion
//! produced mid-poll interrupts the wait instead of riding out the
//! timeout.

use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readable data (or a hangup that reads as EOF).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, only returned in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor.
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set — field-for-field the kernel's
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// A read attempt will make progress (data, EOF, or a reportable
    /// error).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// A write attempt will make progress (buffer space or an error the
    /// write will surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// The descriptor is dead: no read/write will ever succeed again.
    pub fn failed(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[repr(C)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_ppoll(fds: *mut PollFd, nfds: usize, timeout: *const Timespec) -> isize {
    const SYS_PPOLL: usize = 271;
    let ret: isize;
    // ppoll(fds, nfds, timeout, sigmask=NULL, sigsetsize=0)
    core::arch::asm!(
        "syscall",
        inlateout("rax") SYS_PPOLL as isize => ret,
        in("rdi") fds,
        in("rsi") nfds,
        in("rdx") timeout,
        in("r10") 0usize,
        in("r8") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn sys_ppoll(fds: *mut PollFd, nfds: usize, timeout: *const Timespec) -> isize {
    const SYS_PPOLL: usize = 73;
    let ret: isize;
    core::arch::asm!(
        "svc #0",
        inlateout("x0") fds as isize => ret,
        in("x1") nfds,
        in("x2") timeout,
        in("x3") 0usize,
        in("x4") 0usize,
        in("x8") SYS_PPOLL,
        options(nostack),
    );
    ret
}

/// Wait until at least one descriptor is ready (or the timeout lapses);
/// returns how many entries have nonzero `revents`. `None` blocks
/// indefinitely. An interrupting signal is reported as `Ok(0)` — callers
/// re-poll on their next loop iteration anyway.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    const EINTR: isize = -4;
    let ts = timeout.map(|t| Timespec {
        sec: t.as_secs() as i64,
        nsec: t.subsec_nanos() as i64,
    });
    let ts_ptr = ts
        .as_ref()
        .map_or(std::ptr::null(), |t| t as *const Timespec);
    let ret = unsafe { sys_ppoll(fds.as_mut_ptr(), fds.len(), ts_ptr) };
    match ret {
        n if n >= 0 => Ok(n as usize),
        EINTR => Ok(0),
        errno => Err(std::io::Error::from_raw_os_error(-errno as i32)),
    }
}

/// Portable fallback: sleep briefly, then report every descriptor ready
/// for whatever it asked. Nonblocking reads/writes turn the false
/// positives into cheap `EWOULDBLOCK`s, trading syscall efficiency for
/// correctness on targets without the raw-syscall path.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let nap = timeout
        .unwrap_or(Duration::from_millis(5))
        .min(Duration::from_millis(5));
    std::thread::sleep(nap);
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    Ok(fds.len())
}

/// Self-wakeup channel for the poll loop: the read end lives in the poll
/// set, [`Waker`]s write single bytes from other threads.
pub struct WakePipe {
    rx: UnixStream,
    tx: UnixStream,
}

impl WakePipe {
    pub fn new() -> std::io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Self { rx, tx })
    }

    /// The descriptor to include (with [`POLLIN`]) in the poll set.
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// An independent handle other threads can wake the loop with.
    pub fn waker(&self) -> std::io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }

    /// Consume pending wake bytes so the next poll blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Wakes the poll loop; cheap to clone across threads, infallible to
/// use (a full pipe already guarantees a pending wakeup).
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_reports_readable_after_write() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        (&a).write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn poll_times_out_on_idle_descriptor() {
        let (_a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        // The fallback path reports spurious readiness; the syscall path
        // must report nothing and actually wait.
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(n, 0);
            assert!(start.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn waker_interrupts_a_long_poll() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let start = Instant::now();
        poll_fds(&mut fds, Some(Duration::from_secs(10))).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "wake must interrupt the poll well before the timeout"
        );
        pipe.drain();
        // Drained: an immediate re-poll with zero timeout sees nothing
        // (syscall path only; the fallback always reports ready).
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            let n = poll_fds(&mut fds, Some(Duration::ZERO)).unwrap();
            assert_eq!(n, 0, "drain must consume all pending wake bytes");
        }
        t.join().unwrap();
    }

    #[test]
    fn writable_is_reported_on_a_fresh_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].writable());
    }
}
