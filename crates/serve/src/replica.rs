//! One shared-nothing serving replica: model copy, batcher, LRU shard.
//!
//! A replica owns everything its shard needs — a [`CoarsenModel`]
//! materialized from the (cloneable, `Send`) checkpoint, the reusable
//! [`InferenceScratch`] arena, the [`BatchUnion`] topology cache, and an
//! LRU shard — so replicas never share mutable state and never lock.
//! The router consistent-hashes by content fingerprint, which means a
//! repeat request always lands on the shard whose LRU already holds its
//! placement.
//!
//! The loop is drain-by-construction: it blocks on the job channel and
//! exits when every sender is gone. The router drops its senders the
//! moment a shutdown request arrives, so `recv` yields the queued
//! backlog (std channels deliver buffered messages before reporting
//! disconnect), the replica answers it, and returns its
//! [`ServeReport`] — no drain flags, no timeout ticks.
//!
//! Determinism is inherited, not re-argued: every stage is the same
//! pure-per-request pipeline the single-threaded batcher ran (greedy
//! decode ignores the RNG, the placer seeds from content, batched
//! forwards equal solo forwards), so the replica count cannot change a
//! single placement bit.

use crate::error::ServeError;
use crate::lru::LruCache;
use crate::reactor::Waker;
use crate::server::{Precision, ServeConfig, ServeReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::checkpoint::Checkpoint;
use spg_core::policy::{CoarseningPolicy, DecodeMode};
use spg_core::{
    rollout, BatchUnion, CoarsePlacer, InferenceScratch, MetisCoarsePlacer, QuantScratch,
    QuantizedModel,
};
use spg_graph::wire::AllocResponse;
use spg_graph::{
    ClusterSpec, DeltaError, GraphDelta, GraphFeatures, Placement, StreamGraph, TupleRates,
};
use spg_obs::TelemetrySink;
use spg_partition::{realloc_decide, IncrementalConfig, ReallocDecision};
use spg_sim::inject;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How long an injected [`inject::Fault::Stall`] parks the replica —
/// long enough to build observable queue depth, short enough for tests.
const INJECTED_STALL: Duration = Duration::from_millis(400);

/// What a [`Job`] asks for: a fresh allocation, or an incremental
/// re-allocation from a prior placement through a graph delta.
// Allocs dominate queue traffic, but a Job already owns a full
// StreamGraph, so the variant-size gap is noise next to the payload.
#[allow(clippy::large_enum_variant)]
pub(crate) enum JobKind {
    Alloc,
    Realloc {
        prior_placement: Vec<u32>,
        delta: GraphDelta,
    },
}

/// A validated allocation request, routed to this replica's queue.
pub(crate) struct Job {
    /// Router-assigned sequence number: the key under which the job is
    /// tracked in the shard's [`FlightTable`] while a replica holds it.
    pub seq: u64,
    pub id: String,
    /// For a realloc this is the *prior* graph; the replica applies the
    /// delta itself.
    pub graph: StreamGraph,
    pub devices: usize,
    pub source_rate: f64,
    pub fingerprint: u64,
    pub kind: JobKind,
    /// Negotiated protocol version (1 unless the request said otherwise).
    pub version: u64,
    /// The request's own usefulness budget (v2 `deadline_ms`): lapsed
    /// jobs are shed before encode with `deadline-exceeded`.
    pub deadline_ms: Option<u64>,
    /// Set by the router past the shed watermark: answer from the LRU
    /// or shed as `overloaded` — no inference for this job.
    pub cache_only: bool,
    /// Which connection to deliver the answer to.
    pub conn: u64,
    pub enqueued: Instant,
}

/// The in-flight ledger a shard supervisor shares with its replica
/// incarnations: `(conn, request id)` of every job dequeued but not yet
/// answered, keyed by [`Job::seq`]. When an incarnation dies, the
/// supervisor drains this and answers each entry with `internal` — the
/// one-response-per-request invariant survives the panic. Single
/// thread, two scopes (loop and supervisor), hence `RefCell` not a lock.
pub(crate) type FlightTable = RefCell<HashMap<u64, (u64, String)>>;

/// A finished response line, heading back to the I/O loop.
pub(crate) struct Completion {
    pub conn: u64,
    pub shard: u32,
    pub line: String,
}

/// Run one shard under supervision until the router hangs up; returns
/// the shard's share of the serve report.
///
/// Each iteration runs one replica *incarnation* ([`replica_loop`])
/// under `catch_unwind`. A clean return is the drain signal. A panic
/// answers every job the dead incarnation had dequeued (the
/// [`FlightTable`]) with `internal`, bumps the generation — which
/// remaps [`inject::replica_key`] so a pinned fault stops firing — and
/// respawns a fresh incarnation from the retained checkpoint: new model
/// materialization, new batcher state, new (cold) LRU shard. Jobs still
/// buffered in the queue are untouched and served by the successor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn supervise_shard(
    shard: u32,
    checkpoint: Checkpoint,
    rx: mpsc::Receiver<Job>,
    done: mpsc::Sender<Completion>,
    waker: Waker,
    cfg: &ServeConfig,
    base_cluster: ClusterSpec,
    sink: &TelemetrySink,
) -> ServeReport {
    let mut report = ServeReport::default();
    let flight = FlightTable::default();
    let mut generation: u64 = 0;
    loop {
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            replica_loop(
                shard,
                checkpoint.clone(),
                &rx,
                &done,
                &waker,
                cfg,
                base_cluster,
                sink,
                &mut report,
                &flight,
                generation,
            )
        }));
        match run {
            Ok(()) => break,
            Err(_) => {
                // Answer everything the dead incarnation was holding:
                // the client gets `internal` now instead of silence.
                let orphans: Vec<(u64, String)> = flight
                    .borrow_mut()
                    .drain()
                    .map(|(_, entry)| entry)
                    .collect();
                let err = ServeError::Internal(format!("replica {shard} restarted after a panic"));
                for (conn, id) in orphans {
                    report.errors += 1;
                    sink.counter("serve.fault.inflight_failed", 1);
                    let line = err.response(Some(id)).to_line();
                    let _ = done.send(Completion { conn, shard, line });
                }
                report.replica_restarts += 1;
                sink.counter("serve.fault.replica_restarts", 1);
                generation += 1;
                waker.wake();
            }
        }
    }
    sink.counter(
        &format!("serve.replica.{shard}.responses"),
        report.responses,
    );
    sink.counter(&format!("serve.replica.{shard}.errors"), report.errors);
    sink.counter(&format!("serve.replica.{shard}.batches"), report.batches);
    sink.counter(
        &format!("serve.replica.{shard}.cache_hits"),
        report.cache_hits,
    );
    let lookups = report.cache_hits + report.cache_misses;
    if lookups > 0 {
        sink.gauge(
            &format!("serve.replica.{shard}.shard_hit_rate"),
            report.cache_hits as f64 / lookups as f64,
        );
    }
    // One last wake: the I/O loop notices this sender is gone and can
    // finish its drain bookkeeping.
    waker.wake();
    report
}

/// Run one replica incarnation until the router hangs up (clean drain)
/// or a panic unwinds into the supervisor. Cumulative counts go through
/// `report`, which lives in the supervisor so they survive a panic.
#[allow(clippy::too_many_arguments)]
fn replica_loop(
    shard: u32,
    checkpoint: Checkpoint,
    rx: &mpsc::Receiver<Job>,
    done: &mpsc::Sender<Completion>,
    waker: &Waker,
    cfg: &ServeConfig,
    base_cluster: ClusterSpec,
    sink: &TelemetrySink,
    report: &mut ServeReport,
    flight: &FlightTable,
    generation: u64,
) {
    let model = checkpoint.into_model();
    // The quantized twin is materialized once per incarnation, exactly
    // like the f32 model: scale selection happens here, not per request.
    let qmodel = match cfg.precision {
        Precision::F32 => None,
        Precision::Int8 => Some(model.quantize()),
    };
    let policy = CoarseningPolicy::from_config(&model.config);
    let placer = MetisCoarsePlacer::new(cfg.seed);
    let mut cache: LruCache<(Vec<u32>, f64)> = LruCache::new(cfg.cache_capacity);
    let mut union = BatchUnion::new();
    let mut scratch = InferenceScratch::new();
    let mut qscratch = QuantScratch::new();
    let timeout = Duration::from_millis(cfg.request_timeout_ms);
    let workers = cfg.workers.clamp(1, rollout::default_workers());
    let inc_cfg = IncrementalConfig::default();
    // Every answer path retires its flight entry *before* the send, so
    // a panic can never double-answer a request.
    let respond = |seq: u64, conn: u64, line: String| {
        flight.borrow_mut().remove(&seq);
        let _ = done.send(Completion { conn, shard, line });
    };
    let v2_fields = |version: u64| {
        if version >= 2 {
            (Some(2), Some(shard))
        } else {
            (None, None)
        }
    };

    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while jobs.len() < cfg.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        // Dequeued jobs enter the flight ledger before any fallible
        // work: from here on, a replica death answers them `internal`.
        {
            let mut inflight = flight.borrow_mut();
            for job in &jobs {
                inflight.insert(job.seq, (job.conn, job.id.clone()));
            }
        }

        let _batch_span = sink.span("serve.batch");
        sink.hist("serve.batch_size", jobs.len() as f64);
        report.batches += 1;

        // Admission: injected faults, the request's own deadline, the
        // server deadline, the shard LRU, then the watermark shed.
        let now = Instant::now();
        let mut todo: Vec<Job> = Vec::with_capacity(jobs.len());
        let mut reallocs: Vec<Job> = Vec::new();
        for job in jobs {
            match inject::at(
                inject::Site::ReplicaWork,
                inject::replica_key(job.fingerprint, generation),
            ) {
                // An unguarded panic: the incarnation dies and the
                // supervisor answers the flight ledger.
                Some(inject::Fault::Kill) => {
                    panic!("injected replica kill (shard {shard})")
                }
                Some(inject::Fault::Stall) => std::thread::sleep(INJECTED_STALL),
                // A panic through the same catch_unwind isolation an
                // organic per-request panic gets: this request fails
                // alone, the incarnation lives.
                Some(inject::Fault::WorkerPanic) => {
                    let _ = std::panic::catch_unwind(|| {
                        panic!("injected worker panic (shard {shard})")
                    });
                    report.errors += 1;
                    report.panics_caught += 1;
                    sink.counter("serve.fault.panics_caught", 1);
                    let err =
                        ServeError::Internal(format!("replica {shard} caught an injected panic"));
                    respond(job.seq, job.conn, err.response(Some(job.id)).to_line());
                    continue;
                }
                _ => {}
            }
            let waited = now.duration_since(job.enqueued);
            sink.hist("serve.queue_wait_ms", waited.as_secs_f64() * 1e3);
            // The client's own budget first: a lapsed request is waste
            // either way, so it sheds before the server deadline and
            // before any inference. A budget of 0 sheds unconditionally.
            if let Some(budget) = job.deadline_ms {
                if waited.as_millis() >= budget as u128 {
                    report.errors += 1;
                    report.shed_deadline += 1;
                    sink.counter("serve.fault.shed_deadline", 1);
                    let err = ServeError::DeadlineExceeded {
                        waited_ms: waited.as_millis(),
                        deadline_ms: budget,
                    };
                    respond(job.seq, job.conn, err.response(Some(job.id)).to_line());
                    continue;
                }
            }
            if waited > timeout {
                report.errors += 1;
                let err = ServeError::Timeout {
                    waited_ms: waited.as_millis(),
                    deadline_ms: cfg.request_timeout_ms,
                };
                respond(job.seq, job.conn, err.response(Some(job.id)).to_line());
                continue;
            }
            if let Some((placement, relative)) = cache.get(job.fingerprint) {
                report.responses += 1;
                let (v, shard_tag) = v2_fields(job.version);
                let resp = AllocResponse {
                    id: job.id,
                    placement: placement.clone(),
                    relative_throughput: *relative,
                    cached: true,
                    v,
                    shard: shard_tag,
                    realloc: None,
                };
                respond(job.seq, job.conn, resp.to_line());
                continue;
            }
            // Past the watermark the router marks jobs cache-only:
            // hits (above) still answer, misses shed instead of
            // spending an encode on a queue that is already behind.
            if job.cache_only {
                report.errors += 1;
                report.shed_overload += 1;
                sink.counter("serve.fault.shed_overload", 1);
                let err = ServeError::Overloaded {
                    queue_capacity: cfg.queue_capacity,
                };
                respond(job.seq, job.conn, err.response(Some(job.id)).to_line());
                continue;
            }
            if matches!(job.kind, JobKind::Realloc { .. }) {
                reallocs.push(job);
                continue;
            }
            todo.push(job);
        }

        // Incremental re-allocations run outside the batch path: the
        // warm start is refinement-only (no model forward), and the
        // above-threshold fallback runs the identical solo pipeline an
        // alloc of the mutated graph would run — keyed and seeded by
        // that graph's own request fingerprint, so the fallback answer
        // is bit-identical to the equivalent alloc's.
        for job in reallocs {
            report.reallocs += 1;
            let JobKind::Realloc {
                prior_placement,
                delta,
            } = &job.kind
            else {
                unreachable!("reallocs holds only realloc jobs");
            };
            let base = ClusterSpec {
                devices: job.devices,
                ..base_cluster
            };
            // Per-request panic isolation: an organic panic anywhere in
            // decide/refine/fallback fails this request alone.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let decision = {
                    let _span = sink.span("serve.realloc");
                    realloc_decide(
                        &job.graph,
                        prior_placement,
                        delta,
                        &base,
                        job.source_rate,
                        &inc_cfg,
                    )
                };
                match decision {
                    Err(DeltaError::BadDelta(d)) => Err(ServeError::BadRequest(d)),
                    Err(DeltaError::InvalidResult(d)) => Err(ServeError::InvalidGraph(d)),
                    // An empty delta reproduces the prior response exactly
                    // (no path marker: the bytes must match the original).
                    Ok(ReallocDecision::Unchanged { relative }) => {
                        Ok((prior_placement.clone(), relative, None))
                    }
                    Ok(ReallocDecision::Warm {
                        placement,
                        relative,
                        ..
                    }) => {
                        report.warm_starts += 1;
                        Ok((placement.as_slice().to_vec(), relative, Some("warm")))
                    }
                    Ok(ReallocDecision::Full {
                        graph,
                        devices,
                        source_rate,
                    }) => {
                        let (placement, relative) = solo_alloc(
                            &graph,
                            devices,
                            source_rate,
                            base_cluster,
                            &model,
                            qmodel.as_ref(),
                            &policy,
                            &placer,
                            &mut union,
                            &mut scratch,
                            &mut qscratch,
                            report,
                        );
                        Ok((placement, relative, Some("full")))
                    }
                }
            }));
            let outcome = match outcome {
                Ok(outcome) => outcome,
                Err(_) => {
                    // The batcher state may be mid-update; rebuild it.
                    union = BatchUnion::new();
                    scratch = InferenceScratch::new();
                    qscratch = QuantScratch::new();
                    report.panics_caught += 1;
                    sink.counter("serve.fault.panics_caught", 1);
                    Err(ServeError::Internal(format!(
                        "replica {shard} panicked during realloc; request failed"
                    )))
                }
            };
            let (placement, relative, path) = match outcome {
                Ok(t) => t,
                Err(err) => {
                    report.errors += 1;
                    respond(job.seq, job.conn, err.response(Some(job.id)).to_line());
                    continue;
                }
            };
            report.responses += 1;
            let (v, shard_tag) = v2_fields(job.version);
            let resp = AllocResponse {
                id: job.id,
                placement: placement.clone(),
                relative_throughput: relative,
                cached: false,
                v,
                shard: shard_tag,
                realloc: path.map(str::to_string),
            };
            respond(job.seq, job.conn, resp.to_line());
            cache.insert(job.fingerprint, (placement, relative));
        }

        if todo.is_empty() {
            waker.wake();
            continue;
        }

        // Identical requests sharing a batch share one computation.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(todo.len());
        for (i, job) in todo.iter().enumerate() {
            match unique
                .iter()
                .position(|&u| todo[u].fingerprint == job.fingerprint)
            {
                Some(slot) => slot_of.push(slot),
                None => {
                    unique.push(i);
                    slot_of.push(unique.len() - 1);
                }
            }
        }

        // ONE forward pass over the disjoint union of the unique
        // graphs, then the decode → place → simulate fan-out. The whole
        // batch computation is panic-isolated: an organic panic fails
        // only this batch's requests with `internal`, the scratch state
        // is rebuilt, and the incarnation lives on.
        let work = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let encode_start = Instant::now();
            let (prepared, probs) = {
                let _span = sink.span("serve.encode");
                let prepared: Vec<(TupleRates, GraphFeatures, ClusterSpec)> = unique
                    .iter()
                    .map(|&i| {
                        let job = &todo[i];
                        // A `devices` override keeps the server cluster's
                        // per-device MIPS and link bandwidth.
                        let cluster = ClusterSpec {
                            devices: job.devices,
                            ..base_cluster
                        };
                        let rates = TupleRates::compute(&job.graph, job.source_rate);
                        let feats = GraphFeatures::extract_with_rates(&job.graph, &cluster, &rates);
                        (rates, feats, cluster)
                    })
                    .collect();
                let probs = {
                    let items: Vec<(&StreamGraph, &GraphFeatures)> = unique
                        .iter()
                        .zip(&prepared)
                        .map(|(&i, (_, feats, _))| (&todo[i].graph, feats))
                        .collect();
                    // The request fingerprint keys the union cache: it covers
                    // topology, devices, and rate — everything the features
                    // are derived from.
                    let keys: Vec<u64> = unique.iter().map(|&i| todo[i].fingerprint).collect();
                    match &qmodel {
                        Some(qm) => qm.predict_probs_batch_with(
                            &mut union,
                            &mut scratch,
                            &mut qscratch,
                            Some(&keys),
                            &items,
                        ),
                        None => model.predict_probs_batch_with(
                            &mut union,
                            &mut scratch,
                            Some(&keys),
                            &items,
                        ),
                    }
                };
                (prepared, probs)
            };
            report.encode_ns += encode_start.elapsed().as_nanos() as u64;

            let rollout_start = Instant::now();
            let results: Vec<(Vec<u32>, f64)> = {
                let _span = sink.span("serve.rollout");
                let (todo, unique, policy, placer) = (&todo, &unique, &policy, &placer);
                let (prepared, probs) = (&prepared, &probs);
                rollout::run_ordered(workers, unique.len(), move |u| {
                    let job = &todo[unique[u]];
                    let (rates, _, cluster) = &prepared[u];
                    // Greedy decoding ignores the RNG; seed from content so
                    // even a non-greedy mode would stay request-deterministic.
                    let mut rng = ChaCha8Rng::seed_from_u64(job.fingerprint);
                    let decisions = policy.decode(&probs[u], DecodeMode::Greedy, &mut rng);
                    let coarsening =
                        policy.apply(&job.graph, rates, cluster, &decisions, &probs[u]);
                    let coarse = placer.place_coarse(&coarsening.coarse, cluster);
                    let placement = Placement::lift(&coarse, &coarsening.node_map);
                    let relative = spg_sim::reward::relative_throughput_with_rates(
                        &job.graph, cluster, &placement, rates,
                    );
                    (placement.as_slice().to_vec(), relative)
                })
            };
            report.rollout_ns += rollout_start.elapsed().as_nanos() as u64;
            results
        }));
        let results = match work {
            Ok(results) => results,
            Err(_) => {
                union = BatchUnion::new();
                scratch = InferenceScratch::new();
                qscratch = QuantScratch::new();
                report.panics_caught += 1;
                sink.counter("serve.fault.panics_caught", 1);
                let err = ServeError::Internal(format!(
                    "replica {shard} panicked during batch inference; request failed"
                ));
                for job in &todo {
                    report.errors += 1;
                    respond(
                        job.seq,
                        job.conn,
                        err.response(Some(job.id.clone())).to_line(),
                    );
                }
                waker.wake();
                continue;
            }
        };

        for (job, &slot) in todo.iter().zip(&slot_of) {
            let (placement, relative) = &results[slot];
            report.responses += 1;
            let (v, shard_tag) = v2_fields(job.version);
            let resp = AllocResponse {
                id: job.id.clone(),
                placement: placement.clone(),
                relative_throughput: *relative,
                cached: false,
                v,
                shard: shard_tag,
                realloc: None,
            };
            respond(job.seq, job.conn, resp.to_line());
            cache.insert(job.fingerprint, (placement.clone(), *relative));
        }
        waker.wake();
    }

    // Clean drain exit: fold this incarnation's cache stats into the
    // shard total. (A panicked incarnation loses its cache stats with
    // its cache — the counts are diagnostic, not load-bearing.)
    report.cache_hits += cache.hits();
    report.cache_misses += cache.misses();
    report.union_cache_hits += union.cache_hits();
    waker.wake();
}

/// The full pipeline for one graph — the above-threshold realloc
/// fallback. Keyed and RNG-seeded by the *mutated* graph's own request
/// fingerprint — precision-tagged exactly like the router keys — so the
/// result is bit-identical to what a plain alloc of that graph would
/// return on the same server (and the union cache is shared with it).
#[allow(clippy::too_many_arguments)]
fn solo_alloc(
    graph: &StreamGraph,
    devices: usize,
    source_rate: f64,
    base_cluster: ClusterSpec,
    model: &spg_core::CoarsenModel,
    qmodel: Option<&QuantizedModel>,
    policy: &CoarseningPolicy,
    placer: &MetisCoarsePlacer,
    union: &mut BatchUnion,
    scratch: &mut InferenceScratch,
    qscratch: &mut QuantScratch,
    report: &mut ServeReport,
) -> (Vec<u32>, f64) {
    let key = crate::lru::request_fingerprint(graph, devices, source_rate);
    let key = match qmodel {
        Some(_) => crate::lru::quantized_fingerprint(key),
        None => key,
    };
    let cluster = ClusterSpec {
        devices,
        ..base_cluster
    };
    let encode_start = Instant::now();
    let rates = TupleRates::compute(graph, source_rate);
    let feats = GraphFeatures::extract_with_rates(graph, &cluster, &rates);
    let probs = match qmodel {
        Some(qm) => {
            qm.predict_probs_batch_with(union, scratch, qscratch, Some(&[key]), &[(graph, &feats)])
        }
        None => model.predict_probs_batch_with(union, scratch, Some(&[key]), &[(graph, &feats)]),
    };
    report.encode_ns += encode_start.elapsed().as_nanos() as u64;

    let rollout_start = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(key);
    let decisions = policy.decode(&probs[0], DecodeMode::Greedy, &mut rng);
    let coarsening = policy.apply(graph, &rates, &cluster, &decisions, &probs[0]);
    let coarse = placer.place_coarse(&coarsening.coarse, &cluster);
    let placement = Placement::lift(&coarse, &coarsening.node_map);
    let relative =
        spg_sim::reward::relative_throughput_with_rates(graph, &cluster, &placement, &rates);
    report.rollout_ns += rollout_start.elapsed().as_nanos() as u64;
    (placement.as_slice().to_vec(), relative)
}
