//! One shared-nothing serving replica: model copy, batcher, LRU shard.
//!
//! A replica owns everything its shard needs — a [`CoarsenModel`]
//! materialized from the (cloneable, `Send`) checkpoint, the reusable
//! [`InferenceScratch`] arena, the [`BatchUnion`] topology cache, and an
//! LRU shard — so replicas never share mutable state and never lock.
//! The router consistent-hashes by content fingerprint, which means a
//! repeat request always lands on the shard whose LRU already holds its
//! placement.
//!
//! The loop is drain-by-construction: it blocks on the job channel and
//! exits when every sender is gone. The router drops its senders the
//! moment a shutdown request arrives, so `recv` yields the queued
//! backlog (std channels deliver buffered messages before reporting
//! disconnect), the replica answers it, and returns its
//! [`ServeReport`] — no drain flags, no timeout ticks.
//!
//! Determinism is inherited, not re-argued: every stage is the same
//! pure-per-request pipeline the single-threaded batcher ran (greedy
//! decode ignores the RNG, the placer seeds from content, batched
//! forwards equal solo forwards), so the replica count cannot change a
//! single placement bit.

use crate::error::ServeError;
use crate::lru::LruCache;
use crate::reactor::Waker;
use crate::server::{ServeConfig, ServeReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::checkpoint::Checkpoint;
use spg_core::policy::{CoarseningPolicy, DecodeMode};
use spg_core::{rollout, BatchUnion, CoarsePlacer, InferenceScratch, MetisCoarsePlacer};
use spg_graph::wire::AllocResponse;
use spg_graph::{
    ClusterSpec, DeltaError, GraphDelta, GraphFeatures, Placement, StreamGraph, TupleRates,
};
use spg_obs::TelemetrySink;
use spg_partition::{realloc_decide, IncrementalConfig, ReallocDecision};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What a [`Job`] asks for: a fresh allocation, or an incremental
/// re-allocation from a prior placement through a graph delta.
// Allocs dominate queue traffic, but a Job already owns a full
// StreamGraph, so the variant-size gap is noise next to the payload.
#[allow(clippy::large_enum_variant)]
pub(crate) enum JobKind {
    Alloc,
    Realloc {
        prior_placement: Vec<u32>,
        delta: GraphDelta,
    },
}

/// A validated allocation request, routed to this replica's queue.
pub(crate) struct Job {
    pub id: String,
    /// For a realloc this is the *prior* graph; the replica applies the
    /// delta itself.
    pub graph: StreamGraph,
    pub devices: usize,
    pub source_rate: f64,
    pub fingerprint: u64,
    pub kind: JobKind,
    /// Negotiated protocol version (1 unless the request said otherwise).
    pub version: u64,
    /// Which connection to deliver the answer to.
    pub conn: u64,
    pub enqueued: Instant,
}

/// A finished response line, heading back to the I/O loop.
pub(crate) struct Completion {
    pub conn: u64,
    pub shard: u32,
    pub line: String,
}

/// Run one replica until the router hangs up; returns this shard's
/// share of the serve report.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replica_loop(
    shard: u32,
    checkpoint: Checkpoint,
    rx: mpsc::Receiver<Job>,
    done: mpsc::Sender<Completion>,
    waker: Waker,
    cfg: &ServeConfig,
    base_cluster: ClusterSpec,
    sink: &TelemetrySink,
) -> ServeReport {
    let model = checkpoint.into_model();
    let policy = CoarseningPolicy::from_config(&model.config);
    let placer = MetisCoarsePlacer::new(cfg.seed);
    let mut cache: LruCache<(Vec<u32>, f64)> = LruCache::new(cfg.cache_capacity);
    let mut union = BatchUnion::new();
    let mut scratch = InferenceScratch::new();
    let mut report = ServeReport::default();
    let timeout = Duration::from_millis(cfg.request_timeout_ms);
    let workers = cfg.workers.clamp(1, rollout::default_workers());
    let inc_cfg = IncrementalConfig::default();
    let respond = |conn: u64, line: String| {
        let _ = done.send(Completion { conn, shard, line });
    };
    let v2_fields = |version: u64| {
        if version >= 2 {
            (Some(2), Some(shard))
        } else {
            (None, None)
        }
    };

    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        while jobs.len() < cfg.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }

        let _batch_span = sink.span("serve.batch");
        sink.hist("serve.batch_size", jobs.len() as f64);
        report.batches += 1;

        // Deadline + queue-wait accounting, then the shard-LRU pass.
        let now = Instant::now();
        let mut todo: Vec<Job> = Vec::with_capacity(jobs.len());
        let mut reallocs: Vec<Job> = Vec::new();
        for job in jobs {
            let waited = now.duration_since(job.enqueued);
            sink.hist("serve.queue_wait_ms", waited.as_secs_f64() * 1e3);
            if waited > timeout {
                report.errors += 1;
                let err = ServeError::Timeout {
                    waited_ms: waited.as_millis(),
                    deadline_ms: cfg.request_timeout_ms,
                };
                respond(job.conn, err.response(Some(job.id)).to_line());
                continue;
            }
            if let Some((placement, relative)) = cache.get(job.fingerprint) {
                report.responses += 1;
                let (v, shard_tag) = v2_fields(job.version);
                let resp = AllocResponse {
                    id: job.id,
                    placement: placement.clone(),
                    relative_throughput: *relative,
                    cached: true,
                    v,
                    shard: shard_tag,
                    realloc: None,
                };
                respond(job.conn, resp.to_line());
                continue;
            }
            if matches!(job.kind, JobKind::Realloc { .. }) {
                reallocs.push(job);
                continue;
            }
            todo.push(job);
        }

        // Incremental re-allocations run outside the batch path: the
        // warm start is refinement-only (no model forward), and the
        // above-threshold fallback runs the identical solo pipeline an
        // alloc of the mutated graph would run — keyed and seeded by
        // that graph's own request fingerprint, so the fallback answer
        // is bit-identical to the equivalent alloc's.
        for job in reallocs {
            report.reallocs += 1;
            let JobKind::Realloc {
                prior_placement,
                delta,
            } = &job.kind
            else {
                unreachable!("reallocs holds only realloc jobs");
            };
            let base = ClusterSpec {
                devices: job.devices,
                ..base_cluster
            };
            let decision = {
                let _span = sink.span("serve.realloc");
                realloc_decide(
                    &job.graph,
                    prior_placement,
                    delta,
                    &base,
                    job.source_rate,
                    &inc_cfg,
                )
            };
            let (placement, relative, path) = match decision {
                Err(e) => {
                    report.errors += 1;
                    let err = match e {
                        DeltaError::BadDelta(d) => ServeError::BadRequest(d),
                        DeltaError::InvalidResult(d) => ServeError::InvalidGraph(d),
                    };
                    respond(job.conn, err.response(Some(job.id)).to_line());
                    continue;
                }
                // An empty delta reproduces the prior response exactly
                // (no path marker: the bytes must match the original).
                Ok(ReallocDecision::Unchanged { relative }) => {
                    (prior_placement.clone(), relative, None)
                }
                Ok(ReallocDecision::Warm {
                    placement,
                    relative,
                    ..
                }) => {
                    report.warm_starts += 1;
                    (placement.as_slice().to_vec(), relative, Some("warm"))
                }
                Ok(ReallocDecision::Full {
                    graph,
                    devices,
                    source_rate,
                }) => {
                    let (placement, relative) = solo_alloc(
                        &graph,
                        devices,
                        source_rate,
                        base_cluster,
                        &model,
                        &policy,
                        &placer,
                        &mut union,
                        &mut scratch,
                        &mut report,
                    );
                    (placement, relative, Some("full"))
                }
            };
            report.responses += 1;
            let (v, shard_tag) = v2_fields(job.version);
            let resp = AllocResponse {
                id: job.id,
                placement: placement.clone(),
                relative_throughput: relative,
                cached: false,
                v,
                shard: shard_tag,
                realloc: path.map(str::to_string),
            };
            respond(job.conn, resp.to_line());
            cache.insert(job.fingerprint, (placement, relative));
        }

        if todo.is_empty() {
            waker.wake();
            continue;
        }

        // Identical requests sharing a batch share one computation.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(todo.len());
        for (i, job) in todo.iter().enumerate() {
            match unique
                .iter()
                .position(|&u| todo[u].fingerprint == job.fingerprint)
            {
                Some(slot) => slot_of.push(slot),
                None => {
                    unique.push(i);
                    slot_of.push(unique.len() - 1);
                }
            }
        }

        // ONE forward pass over the disjoint union of the unique graphs.
        let encode_start = Instant::now();
        let (prepared, probs) = {
            let _span = sink.span("serve.encode");
            let prepared: Vec<(TupleRates, GraphFeatures, ClusterSpec)> = unique
                .iter()
                .map(|&i| {
                    let job = &todo[i];
                    // A `devices` override keeps the server cluster's
                    // per-device MIPS and link bandwidth.
                    let cluster = ClusterSpec {
                        devices: job.devices,
                        ..base_cluster
                    };
                    let rates = TupleRates::compute(&job.graph, job.source_rate);
                    let feats = GraphFeatures::extract_with_rates(&job.graph, &cluster, &rates);
                    (rates, feats, cluster)
                })
                .collect();
            let probs = {
                let items: Vec<(&StreamGraph, &GraphFeatures)> = unique
                    .iter()
                    .zip(&prepared)
                    .map(|(&i, (_, feats, _))| (&todo[i].graph, feats))
                    .collect();
                // The request fingerprint keys the union cache: it covers
                // topology, devices, and rate — everything the features
                // are derived from.
                let keys: Vec<u64> = unique.iter().map(|&i| todo[i].fingerprint).collect();
                model.predict_probs_batch_with(&mut union, &mut scratch, Some(&keys), &items)
            };
            (prepared, probs)
        };
        report.encode_ns += encode_start.elapsed().as_nanos() as u64;

        // Fan decode → place → simulate over the deterministic pool.
        let rollout_start = Instant::now();
        let results: Vec<(Vec<u32>, f64)> = {
            let _span = sink.span("serve.rollout");
            let (todo, unique, policy, placer) = (&todo, &unique, &policy, &placer);
            let (prepared, probs) = (&prepared, &probs);
            rollout::run_ordered(workers, unique.len(), move |u| {
                let job = &todo[unique[u]];
                let (rates, _, cluster) = &prepared[u];
                // Greedy decoding ignores the RNG; seed from content so
                // even a non-greedy mode would stay request-deterministic.
                let mut rng = ChaCha8Rng::seed_from_u64(job.fingerprint);
                let decisions = policy.decode(&probs[u], DecodeMode::Greedy, &mut rng);
                let coarsening = policy.apply(&job.graph, rates, cluster, &decisions, &probs[u]);
                let coarse = placer.place_coarse(&coarsening.coarse, cluster);
                let placement = Placement::lift(&coarse, &coarsening.node_map);
                let relative = spg_sim::reward::relative_throughput_with_rates(
                    &job.graph, cluster, &placement, rates,
                );
                (placement.as_slice().to_vec(), relative)
            })
        };
        report.rollout_ns += rollout_start.elapsed().as_nanos() as u64;

        for (job, &slot) in todo.iter().zip(&slot_of) {
            let (placement, relative) = &results[slot];
            report.responses += 1;
            let (v, shard_tag) = v2_fields(job.version);
            let resp = AllocResponse {
                id: job.id.clone(),
                placement: placement.clone(),
                relative_throughput: *relative,
                cached: false,
                v,
                shard: shard_tag,
                realloc: None,
            };
            respond(job.conn, resp.to_line());
            cache.insert(job.fingerprint, (placement.clone(), *relative));
        }
        waker.wake();
    }

    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    report.union_cache_hits = union.cache_hits();
    sink.counter(
        &format!("serve.replica.{shard}.responses"),
        report.responses,
    );
    sink.counter(&format!("serve.replica.{shard}.errors"), report.errors);
    sink.counter(&format!("serve.replica.{shard}.batches"), report.batches);
    sink.counter(
        &format!("serve.replica.{shard}.cache_hits"),
        report.cache_hits,
    );
    let lookups = report.cache_hits + report.cache_misses;
    if lookups > 0 {
        sink.gauge(
            &format!("serve.replica.{shard}.shard_hit_rate"),
            report.cache_hits as f64 / lookups as f64,
        );
    }
    // One last wake: the I/O loop notices this sender is gone and can
    // finish its drain bookkeeping.
    waker.wake();
    report
}

/// The full pipeline for one graph — the above-threshold realloc
/// fallback. Keyed and RNG-seeded by the *mutated* graph's own request
/// fingerprint so the result is bit-identical to what a plain alloc of
/// that graph would return (and the union cache is shared with it).
#[allow(clippy::too_many_arguments)]
fn solo_alloc(
    graph: &StreamGraph,
    devices: usize,
    source_rate: f64,
    base_cluster: ClusterSpec,
    model: &spg_core::CoarsenModel,
    policy: &CoarseningPolicy,
    placer: &MetisCoarsePlacer,
    union: &mut BatchUnion,
    scratch: &mut InferenceScratch,
    report: &mut ServeReport,
) -> (Vec<u32>, f64) {
    let key = crate::lru::request_fingerprint(graph, devices, source_rate);
    let cluster = ClusterSpec {
        devices,
        ..base_cluster
    };
    let encode_start = Instant::now();
    let rates = TupleRates::compute(graph, source_rate);
    let feats = GraphFeatures::extract_with_rates(graph, &cluster, &rates);
    let probs = model.predict_probs_batch_with(union, scratch, Some(&[key]), &[(graph, &feats)]);
    report.encode_ns += encode_start.elapsed().as_nanos() as u64;

    let rollout_start = Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(key);
    let decisions = policy.decode(&probs[0], DecodeMode::Greedy, &mut rng);
    let coarsening = policy.apply(graph, &rates, &cluster, &decisions, &probs[0]);
    let coarse = placer.place_coarse(&coarsening.coarse, &cluster);
    let placement = Placement::lift(&coarse, &coarsening.node_map);
    let relative =
        spg_sim::reward::relative_throughput_with_rates(graph, &cluster, &placement, &rates);
    report.rollout_ns += rollout_start.elapsed().as_nanos() as u64;
    (placement.as_slice().to_vec(), relative)
}
