//! The allocation server: JSONL over TCP, batched inference, LRU cache,
//! bounded queues, graceful drain.
//!
//! ## Threading
//!
//! The model holds `Rc`-shared parameters and is not `Send`, so it never
//! leaves the thread that calls [`Server::run`] — that thread *is* the
//! batcher. Around it:
//!
//! * an **acceptor** thread polls the (non-blocking) listener and spawns
//!   a reader/writer pair per connection;
//! * each **reader** parses request lines, answers protocol errors
//!   inline, and pushes valid work into one bounded `sync_channel` — a
//!   full queue bounces the request with an `overloaded` error
//!   (backpressure) instead of buffering without limit;
//! * each **writer** drains an unbounded per-connection string channel,
//!   so slow batches never block a reader;
//! * the **batcher** collects up to [`ServeConfig::max_batch`] queued
//!   requests, drops the ones whose deadline passed (`timeout` error),
//!   answers repeats from the LRU, runs ONE encoder forward pass over
//!   the union of the remaining graphs
//!   ([`CoarsenModel::predict_probs_batch`]), and fans
//!   decode → place → simulate over the deterministic rollout pool.
//!
//! Every stage is pure per request, so identical requests produce
//! bitwise-identical placements whether they hit the cache, share a
//! batch, or arrive years apart.
//!
//! ## Shutdown
//!
//! A `{"cmd":"shutdown"}` line sets the drain flag: the acceptor stops
//! accepting, readers answer new allocation requests with `draining`,
//! and the batcher exits once the queue stays empty — in-flight requests
//! are answered, never dropped. [`Server::run`] then joins every thread
//! and returns a [`ServeReport`].

use crate::lru::{request_fingerprint, LruCache};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::checkpoint::Checkpoint;
use spg_core::policy::{CoarseningPolicy, DecodeMode};
use spg_core::{
    rollout, BatchUnion, CoarsePlacer, CoarsenModel, InferenceScratch, MetisCoarsePlacer,
};
use spg_graph::wire::{parse_request, AllocRequest, AllocResponse, WireError, WireRequest};
use spg_graph::{ClusterSpec, GraphFeatures, Placement, StreamGraph, TupleRates};
use spg_obs::TelemetrySink;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

/// Tuning of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Maximum requests folded into one encoder forward pass.
    pub max_batch: usize,
    /// Bound of the request queue; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline covering queue wait (ms); exceeded requests
    /// are answered with a `timeout` error instead of stale work.
    pub request_timeout_ms: u64,
    /// LRU capacity in placements (0 disables caching).
    pub cache_capacity: usize,
    /// Rollout worker threads (clamped to available parallelism).
    pub workers: usize,
    /// Metis placer seed (placements stay content-deterministic for any
    /// fixed value).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 8,
            queue_capacity: 64,
            request_timeout_ms: 5_000,
            cache_capacity: 256,
            workers: rollout::default_workers(),
            seed: 7,
        }
    }
}

/// What a finished [`Server::run`] did.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Allocation requests answered successfully.
    pub responses: u64,
    /// Requests answered with a named error.
    pub errors: u64,
    /// Encoder batches executed.
    pub batches: u64,
    /// Responses served from the LRU.
    pub cache_hits: u64,
    /// Responses that required fresh inference.
    pub cache_misses: u64,
    /// Wall time spent in feature extraction + model forward (ns).
    pub encode_ns: u64,
    /// Wall time spent in decode → place → simulate (ns).
    pub rollout_ns: u64,
    /// Batches whose disjoint-union topology was reused from the
    /// fingerprint-keyed [`BatchUnion`] cache.
    pub union_cache_hits: u64,
}

/// One unit of queued work: a validated request plus where to answer.
struct Job {
    id: String,
    graph: StreamGraph,
    devices: usize,
    source_rate: f64,
    fingerprint: u64,
    enqueued: Instant,
    respond: mpsc::Sender<String>,
}

/// A bound listener, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

impl Server {
    /// Bind the listener (so the caller can learn the OS-assigned port
    /// before the blocking run starts).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener, cfg })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a shutdown request drains the queue. Blocks the
    /// calling thread (which owns the model and runs the batcher).
    ///
    /// `cluster` and `source_rate` are the defaults a request inherits
    /// when it omits its `devices` / `source_rate` overrides.
    pub fn run(
        self,
        checkpoint: Checkpoint,
        cluster: ClusterSpec,
        source_rate: f64,
        sink: &TelemetrySink,
    ) -> std::io::Result<ServeReport> {
        let Server { listener, cfg } = self;
        let model = checkpoint.into_model();
        let draining = AtomicBool::new(false);
        let protocol_errors = AtomicU64::new(0);
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));

        let report = crossbeam::thread::scope(|s| {
            let acceptor = {
                let tx = tx.clone();
                let (listener, cfg, draining, protocol_errors, sink) =
                    (&listener, &cfg, &draining, &protocol_errors, sink);
                s.spawn(move |conn_scope| {
                    accept_loop(
                        conn_scope,
                        listener,
                        tx,
                        cfg,
                        draining,
                        protocol_errors,
                        sink,
                        cluster,
                        source_rate,
                    )
                })
            };
            drop(tx); // batcher exit must only wait on live connections
            let mut report = batch_loop(rx, &model, &cfg, cluster, &draining, sink);
            report.errors += protocol_errors.load(Ordering::Relaxed);
            acceptor.join().expect("acceptor panicked");
            report
        })
        .expect("serve thread panicked");
        sink.flush();
        Ok(report)
    }
}

/// Poll-accept connections until the drain flag is set. Non-blocking
/// accept + a short sleep keeps shutdown latency bounded without any
/// wake-pipe machinery.
#[allow(clippy::too_many_arguments)]
fn accept_loop<'scope, 'env>(
    s: &crossbeam::thread::Scope<'scope, 'env>,
    listener: &'env TcpListener,
    tx: SyncSender<Job>,
    cfg: &'env ServeConfig,
    draining: &'env AtomicBool,
    protocol_errors: &'env AtomicU64,
    sink: &'env TelemetrySink,
    cluster: ClusterSpec,
    source_rate: f64,
) {
    while !draining.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                sink.counter("serve.connections", 1);
                let tx = tx.clone();
                s.spawn(move |ws| {
                    connection_loop(
                        ws,
                        stream,
                        tx,
                        cfg,
                        draining,
                        protocol_errors,
                        cluster,
                        source_rate,
                    )
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Read request lines off one connection until EOF or drain.
///
/// Line assembly is manual (`read` + split on `\n`) because a read
/// timeout must not lose a partially received line; the timeout tick is
/// just the drain-flag poll.
#[allow(clippy::too_many_arguments)]
fn connection_loop<'scope, 'env>(
    s: &crossbeam::thread::Scope<'scope, 'env>,
    mut stream: TcpStream,
    tx: SyncSender<Job>,
    cfg: &'env ServeConfig,
    draining: &'env AtomicBool,
    protocol_errors: &'env AtomicU64,
    cluster: ClusterSpec,
    source_rate: f64,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let (wtx, wrx) = mpsc::channel::<String>();
    if let Ok(out) = stream.try_clone() {
        s.spawn(move |_| writer_loop(out, wrx));
    } else {
        return;
    }

    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                acc.extend_from_slice(&chunk[..n]);
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = acc.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    handle_line(
                        line,
                        &tx,
                        &wtx,
                        cfg,
                        draining,
                        protocol_errors,
                        cluster,
                        source_rate,
                    );
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if draining.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Parse one request line and route it: protocol errors are answered
/// inline, shutdown flips the drain flag, allocations enter the bounded
/// queue (or bounce with `overloaded` / `draining`).
#[allow(clippy::too_many_arguments)]
fn handle_line(
    line: &str,
    tx: &SyncSender<Job>,
    wtx: &mpsc::Sender<String>,
    cfg: &ServeConfig,
    draining: &AtomicBool,
    protocol_errors: &AtomicU64,
    cluster: ClusterSpec,
    source_rate: f64,
) {
    let refuse = |err: WireError, id: Option<String>| {
        protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = wtx.send(err.response(id).to_line());
    };
    let req: AllocRequest = match parse_request(line) {
        Ok(WireRequest::Alloc(req)) => req,
        Ok(WireRequest::Shutdown) => {
            draining.store(true, Ordering::Relaxed);
            return;
        }
        Err(e) => return refuse(e, None),
    };
    if draining.load(Ordering::Relaxed) {
        return refuse(WireError::Draining, Some(req.id));
    }
    let devices = req.devices.unwrap_or(cluster.devices);
    let rate = req.source_rate.unwrap_or(source_rate);
    let job = Job {
        fingerprint: request_fingerprint(&req.graph, devices, rate),
        id: req.id,
        graph: req.graph,
        devices,
        source_rate: rate,
        enqueued: Instant::now(),
        respond: wtx.clone(),
    };
    match tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(job)) => refuse(
            WireError::Overloaded(format!(
                "request queue full ({} pending)",
                cfg.queue_capacity
            )),
            Some(job.id),
        ),
        Err(TrySendError::Disconnected(job)) => refuse(WireError::Draining, Some(job.id)),
    }
}

/// Forward response lines to the socket; exits when every sender (the
/// connection's reader plus any in-flight jobs) is gone.
fn writer_loop(mut out: TcpStream, wrx: mpsc::Receiver<String>) {
    for line in wrx {
        if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            break;
        }
        let _ = out.flush();
    }
    let _ = out.shutdown(std::net::Shutdown::Write);
}

/// The batcher: owns the model, the cache and the telemetry spans.
fn batch_loop(
    rx: mpsc::Receiver<Job>,
    model: &CoarsenModel,
    cfg: &ServeConfig,
    base_cluster: ClusterSpec,
    draining: &AtomicBool,
    sink: &TelemetrySink,
) -> ServeReport {
    let policy = CoarseningPolicy::from_config(&model.config);
    let placer = MetisCoarsePlacer::new(cfg.seed);
    let mut cache: LruCache<(Vec<u32>, f64)> = LruCache::new(cfg.cache_capacity);
    // Tape-free inference state, reused across batches: the scratch arena
    // reaches steady-state allocation-free forwards, and the union builder
    // skips topology rebuilds when consecutive batches carry identical
    // fingerprints.
    let mut union = BatchUnion::new();
    let mut scratch = InferenceScratch::new();
    let mut report = ServeReport::default();
    let timeout = Duration::from_millis(cfg.request_timeout_ms);
    let workers = cfg.workers.clamp(1, rollout::default_workers());

    'serve: loop {
        let first = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if draining.load(Ordering::Relaxed) {
                    // Readers refuse new work once the flag is set; one
                    // more empty tick means the queue stays drained.
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(job) => job,
                        Err(_) => break 'serve,
                    }
                } else {
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        };
        let mut jobs = vec![first];
        while jobs.len() < cfg.max_batch.max(1) {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }

        let _batch_span = sink.span("serve.batch");
        sink.hist("serve.batch_size", jobs.len() as f64);
        report.batches += 1;

        // Deadline + queue-wait accounting, then the cache pass.
        let now = Instant::now();
        let mut todo: Vec<Job> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let waited = now.duration_since(job.enqueued);
            sink.hist("serve.queue_wait_ms", waited.as_secs_f64() * 1e3);
            if waited > timeout {
                report.errors += 1;
                let err = WireError::Timeout(format!(
                    "queued {} ms, deadline {} ms",
                    waited.as_millis(),
                    cfg.request_timeout_ms
                ));
                let _ = job.respond.send(err.response(Some(job.id)).to_line());
                continue;
            }
            if let Some((placement, relative)) = cache.get(job.fingerprint) {
                report.responses += 1;
                let resp = AllocResponse {
                    id: job.id,
                    placement: placement.clone(),
                    relative_throughput: *relative,
                    cached: true,
                };
                let _ = job.respond.send(resp.to_line());
                continue;
            }
            todo.push(job);
        }
        if todo.is_empty() {
            continue;
        }

        // Identical requests sharing a batch share one computation.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(todo.len());
        for (i, job) in todo.iter().enumerate() {
            match unique
                .iter()
                .position(|&u| todo[u].fingerprint == job.fingerprint)
            {
                Some(slot) => slot_of.push(slot),
                None => {
                    unique.push(i);
                    slot_of.push(unique.len() - 1);
                }
            }
        }

        // ONE forward pass over the disjoint union of the unique graphs.
        let encode_start = Instant::now();
        let (prepared, probs) = {
            let _span = sink.span("serve.encode");
            let prepared: Vec<(TupleRates, GraphFeatures, ClusterSpec)> = unique
                .iter()
                .map(|&i| {
                    let job = &todo[i];
                    // A `devices` override keeps the server cluster's
                    // per-device MIPS and link bandwidth.
                    let cluster = ClusterSpec {
                        devices: job.devices,
                        ..base_cluster
                    };
                    let rates = TupleRates::compute(&job.graph, job.source_rate);
                    let feats = GraphFeatures::extract_with_rates(&job.graph, &cluster, &rates);
                    (rates, feats, cluster)
                })
                .collect();
            let probs = {
                let items: Vec<(&StreamGraph, &GraphFeatures)> = unique
                    .iter()
                    .zip(&prepared)
                    .map(|(&i, (_, feats, _))| (&todo[i].graph, feats))
                    .collect();
                // The request fingerprint keys the union cache: it covers
                // topology, devices, and rate — everything the features
                // are derived from.
                let keys: Vec<u64> = unique.iter().map(|&i| todo[i].fingerprint).collect();
                model.predict_probs_batch_with(&mut union, &mut scratch, Some(&keys), &items)
            };
            (prepared, probs)
        };
        report.encode_ns += encode_start.elapsed().as_nanos() as u64;

        // Fan decode → place → simulate over the deterministic pool.
        let rollout_start = Instant::now();
        let results: Vec<(Vec<u32>, f64)> = {
            let _span = sink.span("serve.rollout");
            let (todo, unique, policy, placer) = (&todo, &unique, &policy, &placer);
            let (prepared, probs) = (&prepared, &probs);
            rollout::run_ordered(workers, unique.len(), move |u| {
                let job = &todo[unique[u]];
                let (rates, _, cluster) = &prepared[u];
                // Greedy decoding ignores the RNG; seed from content so
                // even a non-greedy mode would stay request-deterministic.
                let mut rng = ChaCha8Rng::seed_from_u64(job.fingerprint);
                let decisions = policy.decode(&probs[u], DecodeMode::Greedy, &mut rng);
                let coarsening = policy.apply(&job.graph, rates, cluster, &decisions, &probs[u]);
                let coarse = placer.place_coarse(&coarsening.coarse, cluster);
                let placement = Placement::lift(&coarse, &coarsening.node_map);
                let relative = spg_sim::reward::relative_throughput_with_rates(
                    &job.graph, cluster, &placement, rates,
                );
                (placement.as_slice().to_vec(), relative)
            })
        };
        report.rollout_ns += rollout_start.elapsed().as_nanos() as u64;

        for (job, &slot) in todo.iter().zip(&slot_of) {
            let (placement, relative) = &results[slot];
            report.responses += 1;
            let resp = AllocResponse {
                id: job.id.clone(),
                placement: placement.clone(),
                relative_throughput: *relative,
                cached: false,
            };
            let _ = job.respond.send(resp.to_line());
            cache.insert(job.fingerprint, (placement.clone(), *relative));
        }
    }

    report.cache_hits = cache.hits();
    report.cache_misses = cache.misses();
    report.union_cache_hits = union.cache_hits();
    sink.counter("serve.responses", report.responses);
    sink.counter("serve.errors", report.errors);
    sink.counter("serve.encode_ns", report.encode_ns);
    sink.counter("serve.rollout_ns", report.rollout_ns);
    report
}
