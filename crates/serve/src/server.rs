//! The allocation server: JSONL over TCP, sharded replicas, a
//! readiness-driven I/O loop, graceful drain.
//!
//! ## Architecture
//!
//! One **I/O thread** (the caller of [`Server::run`]) runs the
//! `router::io_loop` event loop: it polls the listener, the wake pipe,
//! and every client socket through the `reactor`, assembles request
//! lines from nonblocking reads, and rendezvous-hashes each valid
//! request by its content fingerprint onto one of
//! [`ServeConfig::replicas`] **replica threads**. Each replica is
//! shared-nothing — its own `CoarsenModel` copy (materialized from the
//! checkpoint), `InferenceScratch`, batcher, and LRU shard — so repeat
//! graphs always land on a warm cache and replicas never contend on a
//! lock (see `replica.rs` for the batch pipeline, `router.rs` for
//! routing).
//!
//! Queues are bounded per replica; a full shard queue answers
//! `overloaded` (backpressure) instead of buffering without limit.
//! Every stage is pure per request, so identical requests produce
//! bitwise-identical placements whether they hit the cache, share a
//! batch, run on different replica counts, or arrive years apart.
//!
//! ## Shutdown
//!
//! A `{"cmd":"shutdown"}` line makes the I/O loop drop its job senders:
//! each replica finishes its queued backlog (channel buffers drain
//! before disconnect is reported) and exits; late connects are answered
//! with `draining`; the loop flushes every remaining response and
//! [`Server::run`] joins the replicas into one aggregated
//! [`ServeReport`] with the per-shard breakdown attached.

use crate::reactor::WakePipe;
use crate::replica::{supervise_shard, Completion, Job};
use crate::router::io_loop;
use spg_core::checkpoint::Checkpoint;
use spg_core::rollout;
use spg_graph::ClusterSpec;
use spg_obs::TelemetrySink;
use std::fmt;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;

/// Numeric precision of the inference path serving allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f32 inference — bitwise identical to the training forward
    /// (the default).
    #[default]
    F32,
    /// Opt-in int8 quantized inference: per-row symmetric weights,
    /// integer-accumulated matmuls, dequantized at layer boundaries.
    /// Deterministic across replicas and SIMD tiers, but placements may
    /// differ from f32 within the agreement bounds pinned by
    /// `tests/quantized_agreement.rs`. Cache keys carry the precision so
    /// int8 entries can never answer an f32 request.
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::Int8 => write!(f, "int8"),
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!("unknown precision `{other}` (expected f32|int8)")),
        }
    }
}

/// Tuning of one [`Server`]. Construct via [`ServeConfig::builder`] (or
/// start from [`ServeConfig::default`] and reconfigure through the
/// builder); the struct is non-exhaustive so new knobs can be added
/// without breaking callers.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Shared-nothing replica workers, each with its own model copy,
    /// batcher, and LRU shard.
    pub replicas: usize,
    /// Maximum requests folded into one encoder forward pass (per
    /// replica).
    pub max_batch: usize,
    /// Bound of each replica's request queue; a full queue answers
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Per-request deadline covering queue wait (ms); exceeded requests
    /// are answered with a `timeout` error instead of stale work.
    pub request_timeout_ms: u64,
    /// LRU capacity in placements per replica shard (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Rollout worker threads per replica (clamped to available
    /// parallelism).
    pub workers: usize,
    /// Metis placer seed (placements stay content-deterministic for any
    /// fixed value).
    pub seed: u64,
    /// Graceful-degradation watermark: once a shard's queue depth
    /// reaches this, new arrivals are marked cache-only — LRU hits
    /// still answer, misses shed as `overloaded` without an encode.
    /// 0 disables the policy.
    pub shed_watermark: usize,
    /// Inference precision; [`Precision::Int8`] is opt-in and folds a
    /// precision tag into every cache fingerprint.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            replicas: 1,
            max_batch: 8,
            queue_capacity: 64,
            request_timeout_ms: 5_000,
            cache_capacity: 256,
            workers: rollout::default_workers(),
            seed: 7,
            shed_watermark: 0,
            precision: Precision::F32,
        }
    }
}

impl ServeConfig {
    /// Start a fluent builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }
}

/// A rejected [`ServeConfigBuilder::build`]: names the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The `ServeConfig` field that failed validation.
    pub field: &'static str,
    message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ServeConfig: `{}` {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Fluent construction of a [`ServeConfig`], mirroring
/// [`ReinforceTrainer::builder`]; every knob is optional, `build`
/// validates the combination and names the bad field on failure.
///
/// ```
/// # use spg_serve::ServeConfig;
/// let cfg = ServeConfig::builder()
///     .addr("127.0.0.1:0")
///     .replicas(2)
///     .max_batch(8)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.replicas, 2);
/// ```
///
/// [`ReinforceTrainer::builder`]: spg_core::ReinforceTrainer::builder
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bind address (port 0 for an OS-assigned port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Number of shared-nothing replica workers.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.cfg.replicas = replicas;
        self
    }

    /// Maximum requests per encoder forward pass.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Bound of each replica's request queue.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Per-request deadline covering queue wait (ms).
    pub fn request_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.request_timeout_ms = ms;
        self
    }

    /// LRU capacity per replica shard (0 disables caching).
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cfg.cache_capacity = cache_capacity;
        self
    }

    /// Rollout worker threads per replica.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Metis placer seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Queue-depth watermark past which cache-missing requests shed as
    /// `overloaded` (0 disables).
    pub fn shed_watermark(mut self, shed_watermark: usize) -> Self {
        self.cfg.shed_watermark = shed_watermark;
        self
    }

    /// Inference precision ([`Precision::F32`] by default; int8 is
    /// opt-in).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.replicas == 0 {
            return Err(ConfigError {
                field: "replicas",
                message: "must be >= 1 (got 0)".to_string(),
            });
        }
        if cfg.max_batch == 0 {
            return Err(ConfigError {
                field: "max_batch",
                message: "must be >= 1 (got 0)".to_string(),
            });
        }
        if cfg.addr.is_empty() {
            return Err(ConfigError {
                field: "addr",
                message: "must not be empty".to_string(),
            });
        }
        Ok(cfg)
    }
}

/// What a finished [`Server::run`] did (aggregated over replicas; the
/// per-shard breakdown is in [`ServeReport::per_replica`]).
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Allocation requests answered successfully.
    pub responses: u64,
    /// Requests answered with a named error.
    pub errors: u64,
    /// Encoder batches executed.
    pub batches: u64,
    /// Responses served from a shard LRU.
    pub cache_hits: u64,
    /// Responses that required fresh inference.
    pub cache_misses: u64,
    /// Wall time spent in feature extraction + model forward (ns).
    pub encode_ns: u64,
    /// Wall time spent in decode → place → simulate (ns).
    pub rollout_ns: u64,
    /// Batches whose disjoint-union topology was reused from the
    /// fingerprint-keyed `BatchUnion` cache.
    pub union_cache_hits: u64,
    /// Incremental `realloc` requests handled (any path).
    pub reallocs: u64,
    /// Reallocs answered by warm-started refinement (no model forward).
    pub warm_starts: u64,
    /// Requests that panicked inside a replica and were answered
    /// `internal` without killing the incarnation.
    pub panics_caught: u64,
    /// Replica incarnations respawned after an uncaught panic.
    pub replica_restarts: u64,
    /// Requests shed because their own `deadline_ms` budget lapsed.
    pub shed_deadline: u64,
    /// Cache-missing requests shed `overloaded` past the queue-depth
    /// watermark.
    pub shed_overload: u64,
    /// Per-replica reports, indexed by shard (empty inside the entries
    /// themselves).
    pub per_replica: Vec<ServeReport>,
}

impl ServeReport {
    /// Sum `other` (one replica's share) into this aggregate.
    fn absorb(&mut self, other: &ServeReport) {
        self.responses += other.responses;
        self.errors += other.errors;
        self.batches += other.batches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.encode_ns += other.encode_ns;
        self.rollout_ns += other.rollout_ns;
        self.union_cache_hits += other.union_cache_hits;
        self.reallocs += other.reallocs;
        self.warm_starts += other.warm_starts;
        self.panics_caught += other.panics_caught;
        self.replica_restarts += other.replica_restarts;
        self.shed_deadline += other.shed_deadline;
        self.shed_overload += other.shed_overload;
    }
}

/// A bound listener, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

impl Server {
    /// Bind the listener (so the caller can learn the OS-assigned port
    /// before the blocking run starts).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener, cfg })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a shutdown request drains every replica. Blocks the
    /// calling thread (which runs the I/O event loop; replicas run on
    /// scoped threads, each materializing its own model copy from the
    /// checkpoint).
    ///
    /// `cluster` and `source_rate` are the defaults a request inherits
    /// when it omits its `devices` / `source_rate` overrides.
    pub fn run(
        self,
        checkpoint: Checkpoint,
        cluster: ClusterSpec,
        source_rate: f64,
        sink: &TelemetrySink,
    ) -> std::io::Result<ServeReport> {
        let Server { listener, cfg } = self;
        let replicas = cfg.replicas.max(1);
        let wake = WakePipe::new()?;
        let wakers: Vec<_> = (0..replicas)
            .map(|_| wake.waker())
            .collect::<std::io::Result<_>>()?;

        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let mut job_txs = Vec::with_capacity(replicas);
        let mut job_rxs = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity.max(1));
            job_txs.push(tx);
            job_rxs.push(rx);
        }

        let report = std::thread::scope(|s| {
            let handles: Vec<_> = job_rxs
                .into_iter()
                .zip(wakers)
                .enumerate()
                .map(|(shard, (rx, waker))| {
                    let done = done_tx.clone();
                    let ckpt = checkpoint.clone();
                    let cfg = &cfg;
                    s.spawn(move || {
                        supervise_shard(shard as u32, ckpt, rx, done, waker, cfg, cluster, sink)
                    })
                })
                .collect();
            // The loop must see `Disconnected` once the replicas exit,
            // so it holds no completion sender of its own.
            drop(done_tx);
            let io = io_loop(
                &listener,
                job_txs,
                &done_rx,
                &wake,
                &cfg,
                cluster,
                source_rate,
                sink,
            );
            let mut report = ServeReport {
                errors: io.protocol_errors,
                ..ServeReport::default()
            };
            for handle in handles {
                // Replica panics are caught inside `supervise_shard`; a
                // join error means the supervisor itself panicked — a
                // bug, but one the server's own result survives.
                match handle.join() {
                    Ok(shard_report) => {
                        report.absorb(&shard_report);
                        report.per_replica.push(shard_report);
                    }
                    Err(_) => {
                        sink.counter("serve.fault.supervisor_panics", 1);
                        eprintln!("serve: BUG: a shard supervisor panicked; its report is lost");
                        report.per_replica.push(ServeReport::default());
                    }
                }
            }
            report
        });
        sink.counter("serve.responses", report.responses);
        sink.counter("serve.errors", report.errors);
        sink.counter("serve.encode_ns", report.encode_ns);
        sink.counter("serve.rollout_ns", report.rollout_ns);
        sink.flush();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = ServeConfig::builder().build().unwrap();
        let default = ServeConfig::default();
        assert_eq!(built.addr, default.addr);
        assert_eq!(built.replicas, default.replicas);
        assert_eq!(built.max_batch, default.max_batch);
        assert_eq!(built.queue_capacity, default.queue_capacity);
        assert_eq!(built.request_timeout_ms, default.request_timeout_ms);
        assert_eq!(built.cache_capacity, default.cache_capacity);
        assert_eq!(built.workers, default.workers);
        assert_eq!(built.seed, default.seed);
        assert_eq!(built.shed_watermark, default.shed_watermark);
        assert_eq!(built.shed_watermark, 0, "shedding must default off");
        assert_eq!(built.precision, default.precision);
        assert_eq!(built.precision, Precision::F32, "int8 must be opt-in");
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = ServeConfig::builder()
            .addr("0.0.0.0:9000")
            .replicas(4)
            .max_batch(16)
            .queue_capacity(128)
            .request_timeout_ms(250)
            .cache_capacity(0)
            .workers(2)
            .seed(42)
            .shed_watermark(32)
            .precision(Precision::Int8)
            .build()
            .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.replicas, 4);
        assert_eq!(cfg.max_batch, 16);
        assert_eq!(cfg.queue_capacity, 128);
        assert_eq!(cfg.request_timeout_ms, 250);
        assert_eq!(cfg.cache_capacity, 0);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.shed_watermark, 32);
        assert_eq!(cfg.precision, Precision::Int8);
    }

    #[test]
    fn precision_parses_and_displays() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("int8".parse::<Precision>().unwrap(), Precision::Int8);
        assert!("fp16".parse::<Precision>().is_err());
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::Int8.to_string(), "int8");
    }

    #[test]
    fn builder_rejections_name_the_field() {
        let err = ServeConfig::builder().replicas(0).build().unwrap_err();
        assert_eq!(err.field, "replicas");
        assert!(err.to_string().contains("`replicas`"), "{err}");

        let err = ServeConfig::builder().max_batch(0).build().unwrap_err();
        assert_eq!(err.field, "max_batch");
        assert!(err.to_string().contains("`max_batch`"), "{err}");

        let err = ServeConfig::builder().addr("").build().unwrap_err();
        assert_eq!(err.field, "addr");
    }
}
