//! Long-running allocation service over the trained coarsening model.
//!
//! The server loads a checkpoint once, listens on TCP, and speaks a
//! line-delimited JSON protocol (`spg_graph::wire`, v1 and v2). It is
//! built for scale-out on one box:
//!
//! * **I/O**: a single readiness-driven event loop ([`router`], on the
//!   hand-rolled [`reactor`]) multiplexes every connection through one
//!   poll set — thousands of idle clients cost poll-set entries, not
//!   threads.
//! * **Compute**: [`ServeConfig::replicas`] shared-nothing replica
//!   workers ([`replica`]), each owning its own model copy, batcher,
//!   scratch arena, and LRU shard. Requests are rendezvous-hashed by
//!   their content fingerprint ([`lru::request_fingerprint`] →
//!   [`router::shard_of`]), so a repeat graph always lands on the
//!   replica whose cache already holds its placement.
//!
//! Each replica coalesces up to `max_batch` queued requests, answers
//! repeats from its LRU shard, runs **one** encoder forward pass over
//! the batch (`CoarsenModel::predict_probs_batch`), and fans decode →
//! placement → simulation over the deterministic worker pool
//! (`spg_core::rollout`).
//!
//! Every stage is measured through the telemetry sink (including
//! per-replica counters and queue-depth gauges), overload is surfaced
//! as a named `overloaded` wire error instead of an unbounded queue
//! (all request-level failures live in [`error::ServeError`]), and a
//! `shutdown` command drains every replica's in-flight work before the
//! server returns. Because greedy decoding and the content-seeded
//! placer are pure functions of the request, identical requests always
//! receive bitwise-identical placements — cached or not, one replica or
//! eight.
//!
//! [`bench`] is the matching open-loop load generator behind
//! `spg bench-serve`.

pub mod bench;
pub mod error;
pub mod lru;
pub mod reactor;
mod replica;
pub mod router;
pub mod server;

pub use bench::{run_bench, run_drift_bench, BenchConfig, BenchReport, DriftReport};
pub use error::ServeError;
pub use lru::{quantized_fingerprint, realloc_fingerprint, request_fingerprint, LruCache};
pub use router::shard_of;
pub use server::{ConfigError, Precision, ServeConfig, ServeConfigBuilder, ServeReport, Server};
