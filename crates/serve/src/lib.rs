//! Long-running allocation service over the trained coarsening model.
//!
//! The server loads a checkpoint once, listens on TCP, and speaks a
//! line-delimited JSON protocol (`spg_graph::wire`). Concurrent
//! requests are funneled through a bounded queue into a single batcher
//! thread that:
//!
//! 1. coalesces up to `max_batch` pending requests,
//! 2. answers repeats from a bounded LRU keyed by a content
//!    fingerprint ([`lru::request_fingerprint`]),
//! 3. runs **one** encoder forward pass over the batch
//!    (`CoarsenModel::predict_probs_batch`), and
//! 4. fans decode → placement → simulation over the deterministic
//!    worker pool (`spg_core::rollout`).
//!
//! Every stage is measured through the PR 2 telemetry sink, overload is
//! surfaced as a named `overloaded` wire error instead of an unbounded
//! queue, and a `shutdown` command drains in-flight work before the
//! server returns. Because greedy decoding and the content-seeded
//! placer are pure functions of the request, identical requests always
//! receive bitwise-identical placements — cached or not.
//!
//! [`bench`] is the matching open-loop load generator behind
//! `spg bench-serve`.

pub mod bench;
pub mod lru;
pub mod server;

pub use bench::{run_bench, BenchConfig, BenchReport};
pub use lru::{request_fingerprint, LruCache};
pub use server::{ServeConfig, ServeReport, Server};
