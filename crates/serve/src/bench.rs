//! Open-loop, seeded load generator for the allocation server.
//!
//! Requests are scheduled on a fixed clock (`rate` req/s across all
//! connections) *before* any response arrives, so a slow server cannot
//! throttle the offered load — latency is measured from the scheduled
//! send time, the honest open-loop definition that includes coordinated
//! omission. Graphs come from the seeded generator; the request stream
//! cycles through `graphs` distinct graphs, so every graph after the
//! first round exercises the server's warm-cache path. The report also
//! cross-checks determinism: every response for the same graph must
//! carry the bitwise-identical placement.

use spg_gen::{DatasetSpec, Setting};
use spg_graph::wire::{shutdown_line, AllocRequest, WireResponse};
use spg_graph::StreamGraph;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator tuning.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Replica count the *server* is running with — recorded in the
    /// report so sweep rows are self-describing (the load generator
    /// itself is replica-agnostic).
    pub replicas: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct seeded graphs cycled through the request stream.
    pub graphs: usize,
    /// Generator seed.
    pub seed: u64,
    /// Offered load in requests/second (open loop).
    pub rate: f64,
    /// Send a shutdown command after the run.
    pub shutdown: bool,
    /// Telemetry JSONL file the *server* writes (`spg serve --metrics`).
    /// With `shutdown`, the drained server's `serve.encode_ns` /
    /// `serve.rollout_ns` counters are folded into the report as the
    /// encode-vs-rollout time split.
    pub serve_metrics: Option<std::path::PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            replicas: 1,
            connections: 4,
            requests: 64,
            graphs: 8,
            seed: 0,
            rate: 200.0,
            shutdown: false,
            serve_metrics: None,
        }
    }
}

/// What the load generator measured.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// Server replica count this row was measured against.
    pub replicas: usize,
    /// Concurrent client connections used.
    pub connections: usize,
    /// Requests sent.
    pub requests: usize,
    /// Successful allocation responses.
    pub ok: usize,
    /// Error responses (plus unparseable/missing responses).
    pub errors: usize,
    /// Responses flagged as served from the cache.
    pub cached: usize,
    /// Wall-clock from first scheduled send to last response (s).
    pub elapsed_s: f64,
    /// `ok / elapsed_s`.
    pub sustained_rps: f64,
    /// Median open-loop latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile open-loop latency (ms).
    pub latency_p99_ms: f64,
    /// True iff every same-graph response carried a bitwise-identical
    /// placement.
    pub consistent: bool,
    /// Server-side time in feature extraction + model forward (ms),
    /// parsed from the server's telemetry stream (`serve_metrics`).
    pub encode_ms: Option<f64>,
    /// Server-side time in decode → place → simulate (ms).
    pub rollout_ms: Option<f64>,
}

impl BenchReport {
    /// Pretty-printed JSON, the `BENCH_serve.json` format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

struct Sample {
    graph_index: usize,
    latency_ms: f64,
    response: WireResponse,
}

/// Run the load generator against a listening server.
pub fn run_bench(cfg: &BenchConfig) -> std::io::Result<BenchReport> {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<StreamGraph> = (0..cfg.graphs.max(1) as u64)
        .map(|g| spg_gen::generate_graph(&spec, cfg.seed.wrapping_add(g)))
        .collect();

    let connections = cfg.connections.max(1);
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(1e-6));
    let start = Instant::now() + Duration::from_millis(20);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(cfg.requests));

    let mut elapsed_s = 0.0;
    crossbeam::thread::scope(|s| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for conn in 0..connections {
            // Request i goes to connection i % connections at t = i·interval.
            let schedule: Vec<(usize, Instant)> = (0..cfg.requests)
                .filter(|i| i % connections == conn)
                .map(|i| (i, start + interval.mul_prec(i)))
                .collect();
            let (graphs, samples) = (&graphs, &samples);
            handles.push(s.spawn(move |_| -> std::io::Result<()> {
                run_connection(&cfg.addr, conn, &schedule, graphs, samples)
            }));
        }
        for h in handles {
            h.join().expect("bench connection panicked")?;
        }
        elapsed_s = (Instant::now().saturating_duration_since(start)).as_secs_f64();
        Ok(())
    })
    .expect("bench thread panicked")?;

    if cfg.shutdown {
        let mut ctl = TcpStream::connect(&cfg.addr)?;
        ctl.write_all(shutdown_line().as_bytes())?;
        ctl.write_all(b"\n")?;
        ctl.flush()?;
    }
    let (encode_ms, rollout_ms) = match &cfg.serve_metrics {
        Some(path) if cfg.shutdown => read_serve_split(path),
        _ => (None, None),
    };

    let samples = samples.into_inner().expect("sample lock poisoned");
    let mut ok = 0;
    let mut errors = cfg.requests.saturating_sub(samples.len());
    let mut cached = 0;
    let mut latencies: Vec<f64> = Vec::with_capacity(samples.len());
    let mut canonical: HashMap<usize, Vec<u32>> = HashMap::new();
    let mut consistent = true;
    for s in &samples {
        latencies.push(s.latency_ms);
        match &s.response {
            WireResponse::Ok(r) => {
                ok += 1;
                if r.cached {
                    cached += 1;
                }
                match canonical.get(&s.graph_index) {
                    Some(first) => consistent &= *first == r.placement,
                    None => {
                        canonical.insert(s.graph_index, r.placement.clone());
                    }
                }
            }
            WireResponse::Err(_) => errors += 1,
        }
    }
    Ok(BenchReport {
        replicas: cfg.replicas,
        connections,
        requests: cfg.requests,
        ok,
        errors,
        cached,
        elapsed_s,
        sustained_rps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        latency_p50_ms: spg_obs::percentile(&latencies, 50.0),
        latency_p99_ms: spg_obs::percentile(&latencies, 99.0),
        consistent,
        encode_ms,
        rollout_ms,
    })
}

/// Extract the server's encode/rollout time split from its telemetry
/// JSONL. The server flushes the counters while draining, concurrently
/// with our shutdown command returning, so poll briefly for the file to
/// contain both.
fn read_serve_split(path: &std::path::Path) -> (Option<f64>, Option<f64>) {
    for _ in 0..20 {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(summary) = spg_obs::Summary::from_lines(text.lines()) {
                if let (Some(e), Some(r)) = (
                    summary.counter("serve.encode_ns"),
                    summary.counter("serve.rollout_ns"),
                ) {
                    return (Some(e as f64 / 1e6), Some(r as f64 / 1e6));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    (None, None)
}

/// One client connection: this thread paces the open-loop write schedule
/// while a reader thread collects responses **concurrently**. Reading as
/// responses arrive is what makes the latency samples server latency: a
/// sequential write-all-then-read phase would park early responses in
/// the socket buffer until the schedule finished, folding the schedule's
/// length into every early sample. (Requests and responses both carry
/// ids, so ordering is irrelevant.)
fn run_connection(
    addr: &str,
    conn: usize,
    schedule: &[(usize, Instant)],
    graphs: &[StreamGraph],
    samples: &Mutex<Vec<Sample>>,
) -> std::io::Result<()> {
    if schedule.is_empty() {
        return Ok(());
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut out = stream.try_clone()?;
    // id → (graph index, scheduled send time), precomputed so the reader
    // can match responses while the writer is still pacing sends. The
    // writer never sends before the scheduled instant, so a latency
    // measured from it can only be late (open loop: queueing delay from
    // a late send is charged to the server, never hidden).
    let mut pending: HashMap<String, (usize, Instant)> = schedule
        .iter()
        .map(|&(i, at)| (format!("c{conn}-r{i}"), (i % graphs.len(), at)))
        .collect();
    std::thread::scope(|s| -> std::io::Result<()> {
        let reader = s.spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while !pending.is_empty() {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        let Ok(resp) = WireResponse::parse(line.trim()) else {
                            continue;
                        };
                        let Some((gi, at)) = resp.id().and_then(|id| pending.remove(id)) else {
                            continue;
                        };
                        samples.lock().expect("sample lock poisoned").push(Sample {
                            graph_index: gi,
                            latency_ms: at.elapsed().as_secs_f64() * 1e3,
                            response: resp,
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        for &(i, at) in schedule {
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
            let req = AllocRequest {
                id: format!("c{conn}-r{i}"),
                graph: graphs[i % graphs.len()].clone(),
                source_rate: None,
                devices: None,
                v: None,
            };
            out.write_all(req.to_line().as_bytes())?;
            out.write_all(b"\n")?;
            out.flush()?;
        }
        out.shutdown(std::net::Shutdown::Write)?;
        reader.join().expect("bench reader panicked");
        Ok(())
    })
}

/// `Duration * usize` without floating-point drift across thousands of
/// requests.
trait MulPrec {
    fn mul_prec(&self, n: usize) -> Duration;
}

impl MulPrec for Duration {
    fn mul_prec(&self, n: usize) -> Duration {
        Duration::from_nanos((self.as_nanos() as u64).saturating_mul(n as u64))
    }
}
