//! Open-loop, seeded load generator for the allocation server.
//!
//! Requests are scheduled on a fixed clock (`rate` req/s across all
//! connections) *before* any response arrives, so a slow server cannot
//! throttle the offered load — latency is measured from the scheduled
//! send time, the honest open-loop definition that includes coordinated
//! omission. Graphs come from the seeded generator; the request stream
//! cycles through `graphs` distinct graphs, so every graph after the
//! first round exercises the server's warm-cache path. The report also
//! cross-checks determinism: every response for the same graph must
//! carry the bitwise-identical placement.

use serde::Serialize;
use spg_gen::{drift_scenario, DatasetSpec, Setting};
use spg_graph::wire::{shutdown_line, AllocRequest, ReallocRequest, WireResponse};
use spg_graph::{GraphDelta, StreamGraph};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator tuning.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Replica count the *server* is running with — recorded in the
    /// report so sweep rows are self-describing (the load generator
    /// itself is replica-agnostic).
    pub replicas: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct seeded graphs cycled through the request stream.
    pub graphs: usize,
    /// Generator seed.
    pub seed: u64,
    /// Offered load in requests/second (open loop).
    pub rate: f64,
    /// Send a shutdown command after the run.
    pub shutdown: bool,
    /// Telemetry JSONL file the *server* writes (`spg serve --metrics`).
    /// With `shutdown`, the drained server's `serve.encode_ns` /
    /// `serve.rollout_ns` counters are folded into the report as the
    /// encode-vs-rollout time split.
    pub serve_metrics: Option<std::path::PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            replicas: 1,
            connections: 4,
            requests: 64,
            graphs: 8,
            seed: 0,
            rate: 200.0,
            shutdown: false,
            serve_metrics: None,
        }
    }
}

/// What the load generator measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Server replica count this row was measured against.
    pub replicas: usize,
    /// Concurrent client connections used.
    pub connections: usize,
    /// Requests sent.
    pub requests: usize,
    /// Successful allocation responses.
    pub ok: usize,
    /// Error responses plus requests whose response never arrived
    /// (`timeouts + short_reads`); malformed lines are tracked
    /// separately in `parse_errors` because the request they belonged
    /// to still shows up as a timeout or short read.
    pub errors: usize,
    /// Requests still unanswered when a connection's read timed out.
    pub timeouts: usize,
    /// Requests still unanswered when the server closed the connection.
    pub short_reads: usize,
    /// Response lines that failed to parse or carried an unknown id.
    pub parse_errors: usize,
    /// Responses flagged as served from the cache.
    pub cached: usize,
    /// Wall-clock from first scheduled send to last response (s).
    pub elapsed_s: f64,
    /// `ok / elapsed_s`.
    pub sustained_rps: f64,
    /// Median open-loop latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile open-loop latency (ms).
    pub latency_p99_ms: f64,
    /// True iff every same-graph response carried a bitwise-identical
    /// placement.
    pub consistent: bool,
    /// Server-side time in feature extraction + model forward (ms),
    /// parsed from the server's telemetry stream (`serve_metrics`).
    pub encode_ms: Option<f64>,
    /// Server-side time in decode → place → simulate (ms).
    pub rollout_ms: Option<f64>,
}

// Hand-written so the stage-split fields are *omitted* when the bench
// ran without `--serve-metrics` (or the mode cannot measure them),
// instead of the derive's `"encode_ms": null`. A `BENCH_serve.json` row
// either carries a real split or no split keys at all.
impl Serialize for BenchReport {
    fn serialize(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("replicas".into(), self.replicas.serialize()),
            ("connections".into(), self.connections.serialize()),
            ("requests".into(), self.requests.serialize()),
            ("ok".into(), self.ok.serialize()),
            ("errors".into(), self.errors.serialize()),
            ("timeouts".into(), self.timeouts.serialize()),
            ("short_reads".into(), self.short_reads.serialize()),
            ("parse_errors".into(), self.parse_errors.serialize()),
            ("cached".into(), self.cached.serialize()),
            ("elapsed_s".into(), self.elapsed_s.serialize()),
            ("sustained_rps".into(), self.sustained_rps.serialize()),
            ("latency_p50_ms".into(), self.latency_p50_ms.serialize()),
            ("latency_p99_ms".into(), self.latency_p99_ms.serialize()),
            ("consistent".into(), self.consistent.serialize()),
        ];
        if let Some(e) = self.encode_ms {
            fields.push(("encode_ms".into(), e.serialize()));
        }
        if let Some(r) = self.rollout_ms {
            fields.push(("rollout_ms".into(), r.serialize()));
        }
        serde::Value::Object(fields)
    }
}

impl BenchReport {
    /// Pretty-printed JSON, the `BENCH_serve.json` format.
    pub fn to_json(&self) -> String {
        // Cannot fire: the struct is numbers, bools, and options of
        // numbers — none of which have a failing Serialize impl.
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

struct Sample {
    graph_index: usize,
    latency_ms: f64,
    response: WireResponse,
}

/// Why responses went missing, split by failure mode so a bad run's
/// report says *what* went wrong instead of one undifferentiated
/// `errors` count.
#[derive(Default)]
struct WireCounts {
    /// Requests unanswered when a connection's read timed out.
    timeouts: AtomicUsize,
    /// Requests unanswered when the server closed the connection early.
    short_reads: AtomicUsize,
    /// Response lines that failed to parse or matched no pending id.
    parse_errors: AtomicUsize,
}

/// Run the load generator against a listening server.
pub fn run_bench(cfg: &BenchConfig) -> std::io::Result<BenchReport> {
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let graphs: Vec<StreamGraph> = (0..cfg.graphs.max(1) as u64)
        .map(|g| spg_gen::generate_graph(&spec, cfg.seed.wrapping_add(g)))
        .collect();

    let connections = cfg.connections.max(1);
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(1e-6));
    let start = Instant::now() + Duration::from_millis(20);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(cfg.requests));
    let counts = WireCounts::default();

    let mut elapsed_s = 0.0;
    crossbeam::thread::scope(|s| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for conn in 0..connections {
            // Request i goes to connection i % connections at t = i·interval.
            let schedule: Vec<(usize, Instant)> = (0..cfg.requests)
                .filter(|i| i % connections == conn)
                .map(|i| (i, start + interval.mul_prec(i)))
                .collect();
            let (graphs, samples, counts) = (&graphs, &samples, &counts);
            handles.push(s.spawn(move |_| -> std::io::Result<()> {
                run_connection(&cfg.addr, conn, &schedule, graphs, samples, counts)
            }));
        }
        for h in handles {
            // A panicked connection thread is a bench bug; name it as
            // an I/O error instead of tearing down the process.
            match h.join() {
                Ok(res) => res?,
                Err(_) => {
                    return Err(std::io::Error::other("bench connection thread panicked"));
                }
            }
        }
        elapsed_s = (Instant::now().saturating_duration_since(start)).as_secs_f64();
        Ok(())
    })
    .map_err(|_| std::io::Error::other("bench scope panicked"))??;

    if cfg.shutdown {
        let mut ctl = TcpStream::connect(&cfg.addr)?;
        ctl.write_all(shutdown_line().as_bytes())?;
        ctl.write_all(b"\n")?;
        ctl.flush()?;
    }
    let (encode_ms, rollout_ms) = match &cfg.serve_metrics {
        Some(path) if cfg.shutdown => read_serve_split(path),
        _ => (None, None),
    };

    // Poisoning only marks that some thread panicked while holding the
    // lock; a `push` leaves the Vec valid either way, so unpoison.
    let samples = samples
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(
        samples.len() <= cfg.requests,
        "collected {} samples for {} requests — duplicate or phantom responses",
        samples.len(),
        cfg.requests
    );
    let timeouts = counts.timeouts.load(Ordering::Relaxed);
    let short_reads = counts.short_reads.load(Ordering::Relaxed);
    let parse_errors = counts.parse_errors.load(Ordering::Relaxed);
    let mut ok = 0;
    // Missing responses are exactly the pending requests each reader
    // classified on exit; error *responses* are added in the loop below.
    let mut errors = timeouts + short_reads;
    let mut cached = 0;
    let mut latencies: Vec<f64> = Vec::with_capacity(samples.len());
    let mut canonical: HashMap<usize, Vec<u32>> = HashMap::new();
    let mut consistent = true;
    for s in &samples {
        latencies.push(s.latency_ms);
        match &s.response {
            WireResponse::Ok(r) => {
                ok += 1;
                if r.cached {
                    cached += 1;
                }
                match canonical.get(&s.graph_index) {
                    Some(first) => consistent &= *first == r.placement,
                    None => {
                        canonical.insert(s.graph_index, r.placement.clone());
                    }
                }
            }
            WireResponse::Err(_) => errors += 1,
        }
    }
    Ok(BenchReport {
        replicas: cfg.replicas,
        connections,
        requests: cfg.requests,
        ok,
        errors,
        timeouts,
        short_reads,
        parse_errors,
        cached,
        elapsed_s,
        sustained_rps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        latency_p50_ms: spg_obs::percentile(&latencies, 50.0),
        latency_p99_ms: spg_obs::percentile(&latencies, 99.0),
        consistent,
        encode_ms,
        rollout_ms,
    })
}

/// Extract the server's encode/rollout time split from its telemetry
/// JSONL. The server flushes the counters while draining, concurrently
/// with our shutdown command returning, so poll briefly for the file to
/// contain both.
fn read_serve_split(path: &std::path::Path) -> (Option<f64>, Option<f64>) {
    for _ in 0..20 {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(summary) = spg_obs::Summary::from_lines(text.lines()) {
                if let (Some(e), Some(r)) = (
                    summary.counter("serve.encode_ns"),
                    summary.counter("serve.rollout_ns"),
                ) {
                    return (Some(e as f64 / 1e6), Some(r as f64 / 1e6));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    (None, None)
}

/// One client connection: this thread paces the open-loop write schedule
/// while a reader thread collects responses **concurrently**. Reading as
/// responses arrive is what makes the latency samples server latency: a
/// sequential write-all-then-read phase would park early responses in
/// the socket buffer until the schedule finished, folding the schedule's
/// length into every early sample. (Requests and responses both carry
/// ids, so ordering is irrelevant.)
fn run_connection(
    addr: &str,
    conn: usize,
    schedule: &[(usize, Instant)],
    graphs: &[StreamGraph],
    samples: &Mutex<Vec<Sample>>,
    counts: &WireCounts,
) -> std::io::Result<()> {
    if schedule.is_empty() {
        return Ok(());
    }
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut out = stream.try_clone()?;
    // id → (graph index, scheduled send time), precomputed so the reader
    // can match responses while the writer is still pacing sends. The
    // writer never sends before the scheduled instant, so a latency
    // measured from it can only be late (open loop: queueing delay from
    // a late send is charged to the server, never hidden).
    let mut pending: HashMap<String, (usize, Instant)> = schedule
        .iter()
        .map(|&(i, at)| (format!("c{conn}-r{i}"), (i % graphs.len(), at)))
        .collect();
    std::thread::scope(|s| -> std::io::Result<()> {
        let reader = s.spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while !pending.is_empty() {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) => {
                        // Server closed the connection with requests
                        // still outstanding: short reads, not timeouts.
                        counts
                            .short_reads
                            .fetch_add(pending.len(), Ordering::Relaxed);
                        break;
                    }
                    Ok(_) => {
                        let Ok(resp) = WireResponse::parse(line.trim()) else {
                            counts.parse_errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        let Some((gi, at)) = resp.id().and_then(|id| pending.remove(id)) else {
                            counts.parse_errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        samples
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(Sample {
                                graph_index: gi,
                                latency_ms: at.elapsed().as_secs_f64() * 1e3,
                                response: resp,
                            });
                    }
                    Err(_) => {
                        counts.timeouts.fetch_add(pending.len(), Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
        for &(i, at) in schedule {
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
            let req = AllocRequest {
                id: format!("c{conn}-r{i}"),
                graph: graphs[i % graphs.len()].clone(),
                source_rate: None,
                devices: None,
                v: None,
                deadline_ms: None,
            };
            // A send failure means the server cut this connection
            // (possibly by injected fault). Stop sending — the reader
            // sees EOF and classifies everything still pending as
            // short reads — instead of failing the whole bench.
            if out.write_all(req.to_line().as_bytes()).is_err()
                || out.write_all(b"\n").is_err()
                || out.flush().is_err()
            {
                break;
            }
        }
        let _ = out.shutdown(std::net::Shutdown::Write);
        reader
            .join()
            .map_err(|_| std::io::Error::other("bench reader thread panicked"))?;
        Ok(())
    })
}

/// What the drift bench measured: placement quality retained by the
/// warm-start path against the latency it saved, plus the empty-delta
/// replay consistency check.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Drift scenarios exercised (each: prior alloc → empty-delta
    /// replay → full re-alloc of the mutated graph → warm realloc).
    pub scenarios: usize,
    /// Reallocs answered by the warm-start path (`realloc: "warm"`).
    pub warm_ok: usize,
    /// Full re-allocations of the mutated graph that succeeded.
    pub full_ok: usize,
    /// Error responses or locally-unappliable deltas.
    pub errors: usize,
    /// True iff every empty-delta realloc returned the prior placement
    /// and bitwise-identical relative throughput, with no realloc
    /// marker.
    pub consistent: bool,
    /// Median warm-realloc round-trip latency (ms) — the gated metric.
    pub latency_p50_ms: f64,
    /// 99th-percentile warm-realloc round-trip latency (ms).
    pub latency_p99_ms: f64,
    /// Median full-pipeline round-trip latency on the mutated graph (ms).
    pub full_p50_ms: f64,
    /// `latency_p50_ms / full_p50_ms` — the acceptance bar is ≤ 0.25.
    pub latency_ratio: f64,
    /// Minimum over scenarios of warm relative throughput ÷ full
    /// relative throughput — the acceptance bar is ≥ 0.98.
    pub min_reward_ratio: f64,
    /// Server-side time in feature extraction + model forward (ms),
    /// parsed from the server's telemetry stream (`serve_metrics`).
    pub encode_ms: Option<f64>,
    /// Server-side time in decode → place → simulate (ms).
    pub rollout_ms: Option<f64>,
}

// Same omit-when-absent policy as [`BenchReport`]: a drift row without
// `--serve-metrics` simply has no split keys.
impl Serialize for DriftReport {
    fn serialize(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("scenarios".into(), self.scenarios.serialize()),
            ("warm_ok".into(), self.warm_ok.serialize()),
            ("full_ok".into(), self.full_ok.serialize()),
            ("errors".into(), self.errors.serialize()),
            ("consistent".into(), self.consistent.serialize()),
            ("latency_p50_ms".into(), self.latency_p50_ms.serialize()),
            ("latency_p99_ms".into(), self.latency_p99_ms.serialize()),
            ("full_p50_ms".into(), self.full_p50_ms.serialize()),
            ("latency_ratio".into(), self.latency_ratio.serialize()),
            ("min_reward_ratio".into(), self.min_reward_ratio.serialize()),
        ];
        if let Some(e) = self.encode_ms {
            fields.push(("encode_ms".into(), e.serialize()));
        }
        if let Some(r) = self.rollout_ms {
            fields.push(("rollout_ms".into(), r.serialize()));
        }
        serde::Value::Object(fields)
    }
}

impl DriftReport {
    /// Pretty-printed JSON, the `BENCH_serve.json` row format.
    pub fn to_json(&self) -> String {
        // Cannot fire: the struct is all plain floats and integers.
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

/// Run the drift bench: for each seeded scenario, allocate a graph,
/// verify the empty-delta replay reproduces the response, then race the
/// warm-start realloc against a full re-allocation of the mutated graph
/// and record the quality/latency trade. Requests are sequential on one
/// connection — this measures per-request service latency on a quiet
/// server, not throughput under load.
pub fn run_drift_bench(cfg: &BenchConfig) -> std::io::Result<DriftReport> {
    let spec = DatasetSpec::for_setting(Setting::XLarge);
    let devices = spec.cluster().devices;
    let rate = spec.source_rate;
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    // One request in flight at a time: without nodelay the measurement is
    // dominated by the Nagle/delayed-ACK stall (~40 ms), not the server.
    stream.set_nodelay(true)?;
    let mut out = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut roundtrip = |line: String| -> std::io::Result<(WireResponse, f64)> {
        let t0 = Instant::now();
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        let mut buf = String::new();
        if reader.read_line(&mut buf)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the drift-bench connection",
            ));
        }
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        let resp = WireResponse::parse(buf.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok((resp, latency_ms))
    };

    let scenarios = cfg.graphs.max(1);
    let (mut warm_ok, mut full_ok, mut errors) = (0, 0, 0);
    let mut consistent = true;
    let mut warm_lat: Vec<f64> = Vec::with_capacity(scenarios);
    let mut full_lat: Vec<f64> = Vec::with_capacity(scenarios);
    let mut min_reward_ratio = f64::INFINITY;
    for i in 0..scenarios {
        let seed = cfg.seed.wrapping_add(i as u64);
        let g = spg_gen::generate_graph(&spec, seed);
        let prior_req = AllocRequest {
            id: format!("d{i}-prior"),
            graph: g.clone(),
            source_rate: Some(rate),
            devices: Some(devices),
            v: Some(2),
            deadline_ms: None,
        };
        let (resp, _) = roundtrip(prior_req.to_line())?;
        let WireResponse::Ok(prior) = resp else {
            errors += 1;
            continue;
        };

        // Empty-delta replay: must reproduce the prior response exactly.
        let replay = ReallocRequest {
            id: format!("d{i}-replay"),
            graph: g.clone(),
            prior_placement: prior.placement.clone(),
            delta: GraphDelta::default(),
            source_rate: Some(rate),
            devices: Some(devices),
            v: Some(2),
            deadline_ms: None,
        };
        match roundtrip(replay.to_line())? {
            (WireResponse::Ok(r), _) => {
                consistent &= r.placement == prior.placement
                    && r.relative_throughput.to_bits() == prior.relative_throughput.to_bits()
                    && r.realloc.is_none();
            }
            (WireResponse::Err(_), _) => errors += 1,
        }

        // Drift: full pipeline on the mutated graph vs warm realloc.
        let scenario = drift_scenario(&g, devices, rate, seed);
        let Ok(applied) = scenario.delta.apply(&g) else {
            errors += 1;
            continue;
        };
        let full_req = AllocRequest {
            id: format!("d{i}-full"),
            graph: applied.graph.clone(),
            source_rate: Some(scenario.delta.source_rate.unwrap_or(rate)),
            devices: Some(scenario.delta.devices.unwrap_or(devices)),
            v: Some(2),
            deadline_ms: None,
        };
        let (resp, full_ms) = roundtrip(full_req.to_line())?;
        let WireResponse::Ok(full) = resp else {
            errors += 1;
            continue;
        };
        full_ok += 1;
        full_lat.push(full_ms);

        let warm_req = ReallocRequest {
            id: format!("d{i}-warm"),
            graph: g.clone(),
            prior_placement: prior.placement.clone(),
            delta: scenario.delta.clone(),
            source_rate: Some(rate),
            devices: Some(devices),
            v: Some(2),
            deadline_ms: None,
        };
        let (resp, warm_ms) = roundtrip(warm_req.to_line())?;
        let WireResponse::Ok(warm) = resp else {
            errors += 1;
            continue;
        };
        warm_lat.push(warm_ms);
        if warm.realloc.as_deref() == Some("warm") {
            warm_ok += 1;
        }
        if full.relative_throughput > 0.0 {
            min_reward_ratio =
                min_reward_ratio.min(warm.relative_throughput / full.relative_throughput);
        }
    }
    if cfg.shutdown {
        out.write_all(shutdown_line().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
    // Same stage-split fold-in as `run_bench`: the drained server's
    // encode/rollout counters become the drift row's split.
    let (encode_ms, rollout_ms) = match &cfg.serve_metrics {
        Some(path) if cfg.shutdown => read_serve_split(path),
        _ => (None, None),
    };

    let latency_p50_ms = spg_obs::percentile(&warm_lat, 50.0);
    let full_p50_ms = spg_obs::percentile(&full_lat, 50.0);
    Ok(DriftReport {
        scenarios,
        warm_ok,
        full_ok,
        errors,
        consistent,
        latency_p50_ms,
        latency_p99_ms: spg_obs::percentile(&warm_lat, 99.0),
        full_p50_ms,
        latency_ratio: if full_p50_ms > 0.0 {
            latency_p50_ms / full_p50_ms
        } else {
            0.0
        },
        min_reward_ratio: if min_reward_ratio.is_finite() {
            min_reward_ratio
        } else {
            0.0
        },
        encode_ms,
        rollout_ms,
    })
}

/// `Duration * usize` without floating-point drift across thousands of
/// requests.
trait MulPrec {
    fn mul_prec(&self, n: usize) -> Duration;
}

impl MulPrec for Duration {
    fn mul_prec(&self, n: usize) -> Duration {
        Duration::from_nanos((self.as_nanos() as u64).saturating_mul(n as u64))
    }
}
