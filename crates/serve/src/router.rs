//! The I/O front end: one thread, one poll set, every connection.
//!
//! [`io_loop`] replaces the old thread-per-connection design. It owns
//! the listener, the wake pipe, and every client socket, multiplexing
//! them through [`crate::reactor::poll_fds`] so thousands of idle
//! connections cost a poll-set entry each instead of two parked
//! threads. All sockets are nonblocking with manual line assembly
//! (reads append to a per-connection buffer, writes drain a
//! per-connection queue), so a slow client never stalls anyone else.
//!
//! Routing is rendezvous hashing ([`shard_of`]) over the request's
//! FNV-1a content fingerprint: a repeat graph always lands on the same
//! replica — the one whose LRU shard is warm — and growing the replica
//! count only moves the keys that rendezvous onto the new shard.
//!
//! ## Drain choreography
//!
//! A shutdown request makes the loop drop its job senders; each replica
//! finishes its queued backlog and exits (see `replica.rs`). The loop
//! keeps running — answering late connects with `draining`, routing the
//! backlog's completions — until the completion channel reports all
//! replicas gone and every response byte is flushed.

use crate::error::ServeError;
use crate::lru::{quantized_fingerprint, realloc_fingerprint, request_fingerprint};
use crate::reactor::{poll_fds, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::replica::{Completion, Job, JobKind};
use crate::server::{Precision, ServeConfig};
use spg_graph::wire::{parse_request, WireRequest};
use spg_graph::ClusterSpec;
use spg_obs::TelemetrySink;
use spg_sim::inject;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::mpsc::{self, SyncSender, TryRecvError, TrySendError};
use std::time::{Duration, Instant};

/// Largest request line accepted before the connection is cut off —
/// large enough for any benchmark graph, small enough to bound a
/// hostile client's memory bill.
const MAX_LINE_BYTES: usize = 64 << 20;

/// How long after the replicas finish the loop keeps trying to flush
/// responses to clients that have stopped reading.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// Which replica serves `fingerprint`, by rendezvous (highest random
/// weight) hashing: deterministic for a fixed replica count, and
/// growing `replicas` by one only remaps the keys that rendezvous onto
/// the new shard (~`1/replicas` of them) — warm LRU shards stay warm.
pub fn shard_of(fingerprint: u64, replicas: u32) -> u32 {
    if replicas <= 1 {
        return 0;
    }
    let mut best = 0u32;
    let mut best_weight = 0u64;
    for r in 0..replicas {
        let salt = 0x9E3779B97F4A7C15u64.wrapping_mul(r as u64 + 1);
        let weight = splitmix64(fingerprint ^ salt);
        if r == 0 || weight > best_weight {
            best = r;
            best_weight = weight;
        }
    }
    best
}

/// SplitMix64 finalizer: a cheap, well-mixed u64 → u64 hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// What the I/O loop itself counted (replica work is reported by the
/// replicas).
#[derive(Debug, Default)]
pub(crate) struct IoStats {
    /// Requests refused at the front door: parse failures, overload,
    /// draining, unsupported versions.
    pub protocol_errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet terminated by a newline.
    rbuf: Vec<u8>,
    /// Response bytes queued for this connection; `wpos` marks how far
    /// the socket has accepted them.
    wbuf: Vec<u8>,
    wpos: usize,
    read_eof: bool,
    /// Jobs in flight on some replica whose answers must come back here.
    outstanding: usize,
    dead: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }

    fn queue_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Write as much of the pending buffer as the socket accepts.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }
}

/// Everything `handle_line` needs that outlives a single connection.
struct Router<'a> {
    job_txs: Vec<SyncSender<Job>>,
    depth: Vec<i64>,
    draining: bool,
    stats: IoStats,
    cfg: &'a ServeConfig,
    cluster: ClusterSpec,
    source_rate: f64,
    sink: &'a TelemetrySink,
    /// Monotone per-job sequence, the key replicas track in-flight
    /// work under (see `FlightTable`).
    next_seq: u64,
}

impl Router<'_> {
    /// Parse one request line and route it: protocol errors are
    /// answered inline, shutdown starts the drain, allocations are
    /// rendezvous-hashed onto a replica queue (or bounce with
    /// `overloaded` / `draining`).
    fn handle_line(&mut self, line: &str, conn_id: u64, conn: &mut Conn) {
        let (id, graph, devices, rate, version, deadline_ms, kind) = match parse_request(line) {
            Ok(WireRequest::Alloc(req)) => (
                req.id,
                req.graph,
                req.devices,
                req.source_rate,
                req.v.unwrap_or(1),
                req.deadline_ms,
                JobKind::Alloc,
            ),
            Ok(WireRequest::Realloc(req)) => (
                req.id,
                req.graph,
                req.devices,
                req.source_rate,
                req.v.unwrap_or(1),
                req.deadline_ms,
                JobKind::Realloc {
                    prior_placement: req.prior_placement,
                    delta: req.delta,
                },
            ),
            Ok(WireRequest::Shutdown) => {
                // Dropping the senders is the drain signal: each replica
                // finishes its backlog and exits when its queue closes.
                self.draining = true;
                self.job_txs.clear();
                return;
            }
            Err(e) => {
                self.stats.protocol_errors += 1;
                conn.queue_line(&e.response(None).to_line());
                return;
            }
        };
        let refuse = |stats: &mut IoStats, conn: &mut Conn, err: ServeError, id: String| {
            stats.protocol_errors += 1;
            conn.queue_line(&err.response(Some(id)).to_line());
        };
        if self.draining || self.job_txs.is_empty() {
            return refuse(&mut self.stats, conn, ServeError::Draining, id);
        }
        let devices = devices.unwrap_or(self.cluster.devices);
        let rate = rate.unwrap_or(self.source_rate);
        // Reallocs fingerprint over (prior, placement, delta) in a key
        // space disjoint from plain allocs, so a repeat delta replays
        // from the same warm LRU shard.
        let fingerprint = match &kind {
            JobKind::Alloc => request_fingerprint(&graph, devices, rate),
            JobKind::Realloc {
                prior_placement,
                delta,
            } => realloc_fingerprint(&graph, prior_placement, delta, devices, rate),
        };
        // An int8 server keys its caches (and rollout seeds) in a
        // precision-tagged space so quantized placements can never leak
        // into an f32 deployment's key space; f32 keys are untouched.
        let fingerprint = match self.cfg.precision {
            Precision::F32 => fingerprint,
            Precision::Int8 => quantized_fingerprint(fingerprint),
        };
        let shard = shard_of(fingerprint, self.job_txs.len() as u32);
        // Past the watermark the shard is already behind: mark the job
        // cache-only so the replica answers from its LRU or sheds,
        // rather than queueing more inference behind the backlog.
        let cache_only = self.cfg.shed_watermark > 0
            && self.depth[shard as usize] >= self.cfg.shed_watermark as i64;
        self.next_seq += 1;
        let job = Job {
            seq: self.next_seq,
            version,
            id,
            graph,
            devices,
            source_rate: rate,
            fingerprint,
            kind,
            deadline_ms,
            cache_only,
            conn: conn_id,
            enqueued: Instant::now(),
        };
        match self.job_txs[shard as usize].try_send(job) {
            Ok(()) => {
                conn.outstanding += 1;
                self.depth[shard as usize] += 1;
                self.sink.gauge(
                    &format!("serve.replica.{shard}.queue_depth"),
                    self.depth[shard as usize] as f64,
                );
            }
            Err(TrySendError::Full(job)) => refuse(
                &mut self.stats,
                conn,
                ServeError::Overloaded {
                    queue_capacity: self.cfg.queue_capacity,
                },
                job.id,
            ),
            Err(TrySendError::Disconnected(job)) => {
                refuse(&mut self.stats, conn, ServeError::Draining, job.id)
            }
        }
    }
}

/// Run the event loop until shutdown completes. Owns the calling
/// thread; replicas run elsewhere and talk back through `done_rx` plus
/// the wake pipe.
#[allow(clippy::too_many_arguments)]
pub(crate) fn io_loop(
    listener: &TcpListener,
    job_txs: Vec<SyncSender<Job>>,
    done_rx: &mpsc::Receiver<Completion>,
    wake: &WakePipe,
    cfg: &ServeConfig,
    cluster: ClusterSpec,
    source_rate: f64,
    sink: &TelemetrySink,
) -> IoStats {
    let replicas = job_txs.len();
    let mut router = Router {
        job_txs,
        depth: vec![0; replicas],
        draining: false,
        stats: IoStats::default(),
        cfg,
        cluster,
        source_rate,
        sink,
        next_seq: 0,
    };
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut replicas_done = false;
    let mut drain_started: Option<Instant> = None;
    let mut chunk = [0u8; 64 << 10];

    loop {
        // Poll set: wake pipe, listener, then one entry per connection
        // asking only for what it can use right now.
        let mut fds = vec![
            PollFd::new(wake.fd(), POLLIN),
            PollFd::new(listener.as_raw_fd(), POLLIN),
        ];
        let mut order: Vec<u64> = Vec::with_capacity(conns.len());
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !conn.read_eof && conn.rbuf.len() < MAX_LINE_BYTES {
                events |= POLLIN;
            }
            if !conn.flushed() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            order.push(id);
        }
        if poll_fds(&mut fds, Some(Duration::from_millis(100))).is_err() {
            // A broken poll set cannot be served; dropping the job
            // senders (end of this function) drains the replicas.
            break;
        }
        wake.drain();

        // Route finished work back to its connection. `Disconnected`
        // means every replica has exited AND the channel buffer is
        // empty — std channels deliver all buffered messages first.
        loop {
            match done_rx.try_recv() {
                Ok(completion) => {
                    router.depth[completion.shard as usize] -= 1;
                    if let Some(conn) = conns.get_mut(&completion.conn) {
                        // A completion for a connection with nothing
                        // outstanding is a double completion — a server
                        // bug that must be counted, not absorbed (a
                        // saturating decrement here once masked them).
                        match conn.outstanding.checked_sub(1) {
                            Some(left) => conn.outstanding = left,
                            None => {
                                router.stats.protocol_errors += 1;
                                sink.counter("serve.double_completions", 1);
                                eprintln!(
                                    "serve: BUG: double completion from shard {} \
                                     for connection {}",
                                    completion.shard, completion.conn
                                );
                            }
                        }
                        conn.queue_line(&completion.line);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    replicas_done = true;
                    drain_started.get_or_insert_with(Instant::now);
                    break;
                }
            }
        }

        // Accept everything pending — even while draining, so a late
        // connect gets a `draining` answer instead of silence.
        while let Ok((stream, _)) = listener.accept() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            sink.counter("serve.connections", 1);
            router.stats.connections += 1;
            next_conn_id += 1;
            conns.insert(
                next_conn_id,
                Conn {
                    stream,
                    rbuf: Vec::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    read_eof: false,
                    outstanding: 0,
                    dead: false,
                },
            );
        }

        // Read pass: pull every ready socket dry, then hand complete
        // lines to the router.
        for (slot, &id) in order.iter().enumerate() {
            let pfd = fds[2 + slot];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if pfd.failed() {
                conn.dead = true;
                continue;
            }
            if !pfd.readable() || conn.read_eof {
                continue;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        if conn.rbuf.len() > MAX_LINE_BYTES {
                            router.stats.protocol_errors += 1;
                            conn.dead = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&raw);
                let line = line.trim();
                if !line.is_empty() {
                    router.handle_line(line, id, conn);
                }
            }
        }

        // Write pass: opportunistic — anything queued this iteration
        // usually leaves in the same iteration. The injector can tear a
        // connection here: the decision is pure in the connection id,
        // so a connection destined to fail fails at its first write.
        for (&id, conn) in conns.iter_mut() {
            if conn.dead || conn.flushed() {
                continue;
            }
            match inject::at(inject::Site::ConnWrite, id) {
                Some(inject::Fault::ConnDrop) => {
                    sink.counter("serve.fault.conns_dropped", 1);
                    conn.dead = true;
                }
                Some(inject::Fault::TornWrite) => {
                    // Half the pending bytes go out, then the socket
                    // dies: the client sees a torn line, never a hang.
                    sink.counter("serve.fault.torn_writes", 1);
                    let cut = conn.wpos + (conn.wbuf.len() - conn.wpos) / 2;
                    let _ = conn.stream.write(&conn.wbuf[conn.wpos..cut]);
                    conn.dead = true;
                }
                _ => conn.flush(),
            }
        }

        // Reap: broken sockets immediately; clean EOF once every
        // outstanding answer has come back and been flushed.
        conns.retain(|_, conn| {
            !(conn.dead || (conn.read_eof && conn.outstanding == 0 && conn.flushed()))
        });

        if replicas_done {
            let all_flushed = conns.values().all(Conn::flushed);
            let overdue = drain_started
                .map(|t| t.elapsed() > DRAIN_FLUSH_DEADLINE)
                .unwrap_or(false);
            if all_flushed || overdue {
                break;
            }
        }
    }
    router.stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for fp in [0u64, 1, 42, u64::MAX, 0xdeadbeef] {
            for n in 1..=8u32 {
                let s = shard_of(fp, n);
                assert!(s < n, "shard {s} out of range for {n} replicas");
                assert_eq!(s, shard_of(fp, n), "must be deterministic");
            }
        }
    }

    #[test]
    fn shard_of_single_replica_is_always_zero() {
        for fp in 0..1000u64 {
            assert_eq!(shard_of(fp.wrapping_mul(0x9E3779B9), 1), 0);
        }
    }

    #[test]
    fn shard_of_spreads_load_across_replicas() {
        for n in [2u32, 4, 8] {
            let mut counts = vec![0usize; n as usize];
            for i in 0..4000u64 {
                counts[shard_of(splitmix64(i), n) as usize] += 1;
            }
            let expected = 4000 / n as usize;
            for (r, &c) in counts.iter().enumerate() {
                assert!(
                    c > expected / 2 && c < expected * 2,
                    "shard {r}/{n} got {c} of 4000 (expected ~{expected})"
                );
            }
        }
    }

    #[test]
    fn shard_of_grows_with_minimal_movement() {
        // Rendezvous property: adding a replica only moves keys that
        // now rendezvous onto the NEW shard — nothing reshuffles
        // between the old ones.
        for n in 1..6u32 {
            let mut moved = 0usize;
            for i in 0..2000u64 {
                let fp = splitmix64(i ^ 0xabcdef);
                let before = shard_of(fp, n);
                let after = shard_of(fp, n + 1);
                if before != after {
                    assert_eq!(after, n, "key moved to an old shard during growth");
                    moved += 1;
                }
            }
            let expected = 2000 / (n as usize + 1);
            assert!(
                moved < expected * 2,
                "{moved} of 2000 keys moved on {n}->{} (expected ~{expected})",
                n + 1
            );
        }
    }
}
