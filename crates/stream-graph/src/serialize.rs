//! Dataset (de)serialisation.
//!
//! Datasets are stored as JSON (one file per dataset) so experiments are
//! reproducible byte-for-byte across runs without regenerating graphs.

use crate::cluster::ClusterSpec;
use crate::graph::StreamGraph;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A persisted dataset: graphs plus the environment they were generated for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name (e.g. `medium-100-200`).
    pub name: String,
    /// Cluster environment of the setting.
    pub cluster: ClusterSpec,
    /// Source tuple rate of the setting (tuples/second).
    pub source_rate: f64,
    /// Graphs in the dataset.
    pub graphs: Vec<StreamGraph>,
}

impl Dataset {
    /// Write as JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        w.write_all(json.as_bytes())?;
        w.flush()
    }

    /// Read a JSON dataset from `path`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut r = BufReader::new(file);
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        serde_json::from_str(&buf).map_err(std::io::Error::other)
    }

    /// Split into `(train, test)` taking the last `test_len` graphs as test,
    /// mirroring the paper's 300-graph test split.
    pub fn split(mut self, test_len: usize) -> (Dataset, Dataset) {
        let test_len = test_len.min(self.graphs.len());
        let test_graphs = self.graphs.split_off(self.graphs.len() - test_len);
        let test = Dataset {
            name: format!("{}-test", self.name),
            cluster: self.cluster,
            source_rate: self.source_rate,
            graphs: test_graphs,
        };
        self.name = format!("{}-train", self.name);
        (self, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn tiny_graph(seed: f64) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(seed));
        let c = b.add_node(Operator::new(seed * 2.0));
        b.add_edge(a, c, Channel::new(8.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_through_json() {
        let ds = Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0), tiny_graph(2.0)],
        };
        let dir = std::env::temp_dir().join("spg-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(back.name, "t");
        assert_eq!(back.graphs, ds.graphs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn split_takes_tail() {
        let ds = Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0), tiny_graph(2.0), tiny_graph(3.0)],
        };
        let (train, test) = ds.split(1);
        assert_eq!(train.graphs.len(), 2);
        assert_eq!(test.graphs.len(), 1);
        assert_eq!(test.graphs[0].op(crate::NodeId(0)).ipt, 3.0);
    }

    #[test]
    fn split_caps_at_len() {
        let ds = Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0)],
        };
        let (train, test) = ds.split(10);
        assert_eq!(train.graphs.len(), 0);
        assert_eq!(test.graphs.len(), 1);
    }
}
