//! Dataset (de)serialisation.
//!
//! Datasets are stored as JSON (one file per dataset) so experiments are
//! reproducible byte-for-byte across runs without regenerating graphs.
//!
//! [`Dataset::load`] validates what it reads: every graph is rebuilt
//! through [`StreamGraph::from_parts`] (rejecting dangling edge
//! endpoints, duplicate edges, self-loops, cycles, and empty graphs, and
//! recomputing the derived adjacency so a tampered file cannot smuggle in
//! an inconsistent one), and all numeric fields must be finite with the
//! right sign. Failures are named [`DatasetError`]s, not panics.

use crate::cluster::ClusterSpec;
use crate::graph::{GraphError, StreamGraph};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Why a dataset failed to load or validate.
#[derive(Debug)]
pub enum DatasetError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not valid dataset JSON.
    Parse {
        /// Path that failed.
        path: PathBuf,
        /// Parser diagnostic.
        detail: String,
    },
    /// A graph's structure is invalid (dangling endpoints, duplicate
    /// edges, self-loops, cycles, empty).
    Graph {
        /// Index of the offending graph within the dataset.
        index: usize,
        /// The structural error.
        source: GraphError,
    },
    /// An operator carries an invalid numeric field.
    InvalidOperator {
        /// Index of the offending graph.
        graph: usize,
        /// Node index of the operator.
        node: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A channel carries an invalid numeric field, or the channel list
    /// does not line up with the edge list.
    InvalidChannel {
        /// Index of the offending graph.
        graph: usize,
        /// Edge index of the channel (edge count for a length mismatch).
        edge: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// The source rate is not a finite positive number.
    InvalidSourceRate {
        /// The offending value.
        value: f64,
    },
    /// The cluster spec is unusable.
    InvalidCluster {
        /// What is wrong with it.
        detail: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io { path, source } => {
                write!(f, "failed to read dataset {}: {source}", path.display())
            }
            DatasetError::Parse { path, detail } => {
                write!(f, "dataset {} is not valid JSON: {detail}", path.display())
            }
            DatasetError::Graph { index, source } => {
                write!(f, "dataset graph {index} is invalid: {source}")
            }
            DatasetError::InvalidOperator {
                graph,
                node,
                detail,
            } => write!(
                f,
                "dataset graph {graph}, operator {node} is invalid: {detail}"
            ),
            DatasetError::InvalidChannel {
                graph,
                edge,
                detail,
            } => write!(
                f,
                "dataset graph {graph}, channel {edge} is invalid: {detail}"
            ),
            DatasetError::InvalidSourceRate { value } => write!(
                f,
                "dataset source_rate must be a finite positive number, got {value}"
            ),
            DatasetError::InvalidCluster { detail } => {
                write!(f, "dataset cluster spec is invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io { source, .. } => Some(source),
            DatasetError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Why a single graph failed validation. Shared by [`Dataset`] loading
/// and the serving wire format ([`crate::wire`]) — anything that accepts
/// a graph from outside the process funnels it through
/// [`validate_graph`].
#[derive(Debug)]
pub enum GraphValidationError {
    /// Structural rejection from [`StreamGraph::from_parts`] (dangling
    /// endpoints, duplicate edges, self-loops, cycles, empty graph).
    Structure(GraphError),
    /// An operator carries an invalid numeric field.
    Operator {
        /// Node index of the operator.
        node: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A channel carries an invalid numeric field, or the channel list
    /// does not line up with the edge list.
    Channel {
        /// Edge index of the channel (edge count for a length mismatch).
        edge: usize,
        /// What is wrong with it.
        detail: String,
    },
}

impl fmt::Display for GraphValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphValidationError::Structure(e) => write!(f, "invalid graph structure: {e}"),
            GraphValidationError::Operator { node, detail } => {
                write!(f, "operator {node} is invalid: {detail}")
            }
            GraphValidationError::Channel { edge, detail } => {
                write!(f, "channel {edge} is invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphValidationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphValidationError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

/// Validate one externally-supplied graph: numeric fields must be finite
/// with the right sign, and the derived structure (adjacency,
/// topological order) is rebuilt from the raw parts through the
/// validating constructor — never trusted from the input.
pub fn validate_graph(graph: &StreamGraph) -> Result<StreamGraph, GraphValidationError> {
    for (ni, op) in graph.ops().iter().enumerate() {
        if !(op.ipt.is_finite() && op.ipt >= 0.0) {
            return Err(GraphValidationError::Operator {
                node: ni,
                detail: format!("instructions per tuple {}", op.ipt),
            });
        }
    }
    if graph.channels().len() != graph.edge_list().len() {
        return Err(GraphValidationError::Channel {
            edge: graph.edge_list().len(),
            detail: format!(
                "{} channels for {} edges",
                graph.channels().len(),
                graph.edge_list().len()
            ),
        });
    }
    for (ei, ch) in graph.channels().iter().enumerate() {
        if !(ch.payload.is_finite() && ch.payload >= 0.0) {
            return Err(GraphValidationError::Channel {
                edge: ei,
                detail: format!("payload {} bytes/tuple", ch.payload),
            });
        }
        if !(ch.selectivity.is_finite() && ch.selectivity >= 0.0) {
            return Err(GraphValidationError::Channel {
                edge: ei,
                detail: format!("selectivity {}", ch.selectivity),
            });
        }
    }
    StreamGraph::from_parts(
        graph.ops().to_vec(),
        graph.edge_list().to_vec(),
        graph.channels().to_vec(),
    )
    .map_err(GraphValidationError::Structure)
}

/// A persisted dataset: graphs plus the environment they were generated for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name (e.g. `medium-100-200`).
    pub name: String,
    /// Cluster environment of the setting.
    pub cluster: ClusterSpec,
    /// Source tuple rate of the setting (tuples/second).
    pub source_rate: f64,
    /// Graphs in the dataset.
    pub graphs: Vec<StreamGraph>,
}

impl Dataset {
    /// Write as JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        w.write_all(json.as_bytes())?;
        w.flush()
    }

    /// Read and validate a JSON dataset from `path`.
    pub fn load(path: &Path) -> Result<Self, DatasetError> {
        let io_err = |source| DatasetError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut buf = String::new();
        BufReader::new(std::fs::File::open(path).map_err(io_err)?)
            .read_to_string(&mut buf)
            .map_err(io_err)?;
        let ds: Dataset = serde_json::from_str(&buf).map_err(|e| DatasetError::Parse {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        ds.validated()
    }

    /// Validate the dataset, rebuilding each graph's derived structure
    /// (adjacency, topological order) from its raw parts. Derived
    /// deserialisation bypasses the builder's invariants, so this is
    /// mandatory for any graph that came from disk.
    pub fn validated(mut self) -> Result<Self, DatasetError> {
        if !(self.source_rate.is_finite() && self.source_rate > 0.0) {
            return Err(DatasetError::InvalidSourceRate {
                value: self.source_rate,
            });
        }
        if self.cluster.devices == 0 {
            return Err(DatasetError::InvalidCluster {
                detail: "cluster has no devices".to_string(),
            });
        }
        if !(self.cluster.mips.is_finite() && self.cluster.mips > 0.0) {
            return Err(DatasetError::InvalidCluster {
                detail: format!(
                    "device MIPS must be finite positive, got {}",
                    self.cluster.mips
                ),
            });
        }
        if !(self.cluster.link_mbps.is_finite() && self.cluster.link_mbps > 0.0) {
            return Err(DatasetError::InvalidCluster {
                detail: format!(
                    "link bandwidth must be finite positive, got {} Mbps",
                    self.cluster.link_mbps
                ),
            });
        }
        for (gi, graph) in self.graphs.iter_mut().enumerate() {
            // Numeric checks plus a rebuild through the validating
            // constructor: catches dangling endpoints / duplicates /
            // self-loops / cycles and replaces whatever adjacency the
            // file claimed with the recomputed one.
            *graph = validate_graph(graph).map_err(|e| match e {
                GraphValidationError::Structure(source) => {
                    DatasetError::Graph { index: gi, source }
                }
                GraphValidationError::Operator { node, detail } => DatasetError::InvalidOperator {
                    graph: gi,
                    node,
                    detail,
                },
                GraphValidationError::Channel { edge, detail } => DatasetError::InvalidChannel {
                    graph: gi,
                    edge,
                    detail,
                },
            })?;
        }
        Ok(self)
    }

    /// Split into `(train, test)` taking the last `test_len` graphs as test,
    /// mirroring the paper's 300-graph test split.
    pub fn split(mut self, test_len: usize) -> (Dataset, Dataset) {
        let test_len = test_len.min(self.graphs.len());
        let test_graphs = self.graphs.split_off(self.graphs.len() - test_len);
        let test = Dataset {
            name: format!("{}-test", self.name),
            cluster: self.cluster,
            source_rate: self.source_rate,
            graphs: test_graphs,
        };
        self.name = format!("{}-train", self.name);
        (self, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn tiny_graph(seed: f64) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(seed));
        let c = b.add_node(Operator::new(seed * 2.0));
        b.add_edge(a, c, Channel::new(8.0)).unwrap();
        b.finish().unwrap()
    }

    fn tiny_dataset() -> Dataset {
        Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0), tiny_graph(2.0)],
        }
    }

    fn save_text(tag: &str, text: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("spg-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.json"));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn roundtrip_through_json() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("spg-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(back.name, "t");
        assert_eq!(back.graphs, ds.graphs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn split_takes_tail() {
        let ds = Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0), tiny_graph(2.0), tiny_graph(3.0)],
        };
        let (train, test) = ds.split(1);
        assert_eq!(train.graphs.len(), 2);
        assert_eq!(test.graphs.len(), 1);
        assert_eq!(test.graphs[0].op(crate::NodeId(0)).ipt, 3.0);
    }

    #[test]
    fn split_caps_at_len() {
        let ds = Dataset {
            name: "t".into(),
            cluster: ClusterSpec::paper_medium(5),
            source_rate: 1e4,
            graphs: vec![tiny_graph(1.0)],
        };
        let (train, test) = ds.split(10);
        assert_eq!(train.graphs.len(), 0);
        assert_eq!(test.graphs.len(), 1);
    }

    #[test]
    fn missing_file_names_the_path() {
        let err = Dataset::load(Path::new("/nonexistent/spg-ds.json")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("/nonexistent/spg-ds.json"), "{text}");
        assert!(matches!(err, DatasetError::Io { .. }));
    }

    #[test]
    fn garbage_json_is_a_parse_error_naming_the_path() {
        let path = save_text("garbage", "{not json");
        let err = Dataset::load(&path).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { .. }));
        assert!(err.to_string().contains("garbage.json"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dangling_edge_endpoint_is_rejected() {
        let json = serde_json::to_string(&tiny_dataset()).unwrap();
        // Point the first graph's edge at a node that does not exist.
        let bad = json.replacen("\"edges\":[[0,1]]", "\"edges\":[[0,9]]", 1);
        assert_ne!(bad, json);
        let path = save_text("dangling", &bad);
        let err = Dataset::load(&path).unwrap_err();
        match &err {
            DatasetError::Graph { index: 0, source } => {
                assert!(
                    matches!(source, GraphError::NodeOutOfRange { .. }),
                    "{source:?}"
                )
            }
            other => panic!("expected Graph error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let json = serde_json::to_string(&tiny_dataset()).unwrap();
        let bad = json
            .replacen("\"edges\":[[0,1]]", "\"edges\":[[0,1],[0,1]]", 1)
            .replacen(
                "\"channels\":[{\"payload\":8,\"selectivity\":1}]",
                "\"channels\":[{\"payload\":8,\"selectivity\":1},{\"payload\":8,\"selectivity\":1}]",
                1,
            );
        assert_ne!(bad, json);
        let path = save_text("dup-edge", &bad);
        let err = Dataset::load(&path).unwrap_err();
        match &err {
            DatasetError::Graph { index: 0, source } => {
                assert!(
                    matches!(source, GraphError::DuplicateEdge { .. }),
                    "{source:?}"
                )
            }
            other => panic!("expected Graph error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_and_negative_numbers_are_rejected() {
        // NaN source rate (serialises as null).
        let mut ds = tiny_dataset();
        ds.source_rate = f64::NAN;
        let path = save_text("nan-rate", &serde_json::to_string(&ds).unwrap());
        assert!(matches!(
            Dataset::load(&path).unwrap_err(),
            DatasetError::InvalidSourceRate { .. }
        ));
        std::fs::remove_file(&path).ok();

        // Negative operator cost.
        let json = serde_json::to_string(&tiny_dataset()).unwrap();
        let bad = json.replacen("{\"ipt\":1}", "{\"ipt\":-1}", 1);
        assert_ne!(bad, json);
        let path = save_text("neg-ipt", &bad);
        assert!(matches!(
            Dataset::load(&path).unwrap_err(),
            DatasetError::InvalidOperator {
                graph: 0,
                node: 0,
                ..
            }
        ));
        std::fs::remove_file(&path).ok();

        // Negative channel payload.
        let bad = json.replacen("\"payload\":8", "\"payload\":-8", 1);
        assert_ne!(bad, json);
        let path = save_text("neg-payload", &bad);
        assert!(matches!(
            Dataset::load(&path).unwrap_err(),
            DatasetError::InvalidChannel {
                graph: 0,
                edge: 0,
                ..
            }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_adjacency_is_recomputed_on_load() {
        // Corrupt the first graph's topological order; load must rebuild
        // the derived structure from the raw parts rather than trust it.
        let json = serde_json::to_string(&tiny_dataset()).unwrap();
        let bad = json.replacen("\"topo_order\":[0,1]", "\"topo_order\":[1,0]", 1);
        assert_ne!(bad, json);
        let path = save_text("bad-topo", &bad);
        let ds = Dataset::load(&path).unwrap();
        assert_eq!(ds.graphs[0], tiny_graph(1.0));
        std::fs::remove_file(&path).ok();
    }
}
