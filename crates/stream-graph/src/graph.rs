//! The [`StreamGraph`] DAG of stream-processing operators.

use crate::csr::Csr;
use crate::topo;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an operator (node) inside a [`StreamGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a channel (directed edge) inside a [`StreamGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize` (for slice indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize` (for slice indexing).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A stream-processing operator.
///
/// The paper characterises an operator by its *CPU utilisation*
/// `(IPT * R) / MIPS`; the intrinsic quantity is `ipt` — the number of
/// instructions the operator executes per incoming tuple. The tuple rate `R`
/// is derived from the graph topology and the source rate (see
/// [`crate::rates`]), and MIPS comes from the [`crate::ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Instructions executed per processed tuple.
    pub ipt: f64,
}

impl Operator {
    /// Create an operator with the given instructions-per-tuple cost.
    pub fn new(ipt: f64) -> Self {
        Self { ipt }
    }
}

/// A communication channel (directed edge) between two operators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Bytes transmitted per tuple flowing along this edge.
    pub payload: f64,
    /// Fraction of the upstream operator's output tuples forwarded on this
    /// edge (1.0 = broadcast every tuple to this successor).
    pub selectivity: f64,
}

impl Channel {
    /// A channel forwarding every upstream tuple with the given payload.
    pub fn new(payload: f64) -> Self {
        Self {
            payload,
            selectivity: 1.0,
        }
    }

    /// A channel with explicit payload and selectivity.
    pub fn with_selectivity(payload: f64, selectivity: f64) -> Self {
        Self {
            payload,
            selectivity,
        }
    }
}

/// Errors raised while constructing a [`StreamGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node that does not exist.
    NodeOutOfRange { node: u32, len: usize },
    /// Self-loops are not valid in stream dataflow graphs.
    SelfLoop { node: u32 },
    /// The same (src, dst) pair was added twice.
    DuplicateEdge { src: u32, dst: u32 },
    /// The graph contains a directed cycle.
    Cycle,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "edge endpoint n{node} out of range (graph has {len} nodes)"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on n{node}"),
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge n{src} -> n{dst}")
            }
            GraphError::Cycle => write!(f, "graph contains a directed cycle"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`StreamGraph`].
///
/// ```
/// use spg_graph::{StreamGraphBuilder, Operator, Channel};
///
/// let mut b = StreamGraphBuilder::new();
/// let src = b.add_node(Operator::new(100.0));
/// let map = b.add_node(Operator::new(500.0));
/// let sink = b.add_node(Operator::new(50.0));
/// b.add_edge(src, map, Channel::new(64.0)).unwrap();
/// b.add_edge(map, sink, Channel::new(32.0)).unwrap();
/// let g = b.finish().unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct StreamGraphBuilder {
    ops: Vec<Operator>,
    edges: Vec<(u32, u32)>,
    channels: Vec<Channel>,
}

impl StreamGraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            ops: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            channels: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append an operator; returns its id.
    pub fn add_node(&mut self, op: Operator) -> NodeId {
        let id = NodeId(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    /// Append a directed channel `src -> dst`.
    ///
    /// Fails fast on self-loops and out-of-range endpoints; duplicate edges
    /// and cycles are detected in [`Self::finish`].
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        ch: Channel,
    ) -> Result<EdgeId, GraphError> {
        let len = self.ops.len();
        for n in [src.0, dst.0] {
            if n as usize >= len {
                return Err(GraphError::NodeOutOfRange { node: n, len });
            }
        }
        if src == dst {
            return Err(GraphError::SelfLoop { node: src.0 });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((src.0, dst.0));
        self.channels.push(ch);
        Ok(id)
    }

    /// Validate and freeze into an immutable [`StreamGraph`].
    pub fn finish(self) -> Result<StreamGraph, GraphError> {
        StreamGraph::from_parts(self.ops, self.edges, self.channels)
    }
}

/// An immutable stream-processing DAG.
///
/// Nodes are operators, directed edges are tuple channels. Adjacency is
/// stored twice in CSR form (outgoing and incoming) so traversals in either
/// direction are cache-friendly — the GNN encoder of the paper needs both
/// upstream and downstream neighbourhoods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamGraph {
    ops: Vec<Operator>,
    edges: Vec<(u32, u32)>,
    channels: Vec<Channel>,
    out_adj: Csr,
    in_adj: Csr,
    topo_order: Vec<u32>,
}

impl StreamGraph {
    /// Build from raw parts, validating DAG-ness and edge uniqueness.
    pub fn from_parts(
        ops: Vec<Operator>,
        edges: Vec<(u32, u32)>,
        channels: Vec<Channel>,
    ) -> Result<Self, GraphError> {
        assert_eq!(
            edges.len(),
            channels.len(),
            "edges/channels length mismatch"
        );
        if ops.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = ops.len();
        for &(s, d) in &edges {
            if s as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: s, len: n });
            }
            if d as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: d, len: n });
            }
            if s == d {
                return Err(GraphError::SelfLoop { node: s });
            }
        }
        // Duplicate-edge check via sort of a copy.
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge {
                    src: w[0].0,
                    dst: w[0].1,
                });
            }
        }
        let out_adj = Csr::from_edges(n, edges.iter().map(|&(s, d)| (s, d)));
        let in_adj = Csr::from_edges(n, edges.iter().map(|&(s, d)| (d, s)));
        let topo_order = topo::topological_order(n, &edges).ok_or(GraphError::Cycle)?;
        Ok(Self {
            ops,
            edges,
            channels,
            out_adj,
            in_adj,
            topo_order,
        })
    }

    /// Number of operators.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of channels.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The operator at `v`.
    #[inline]
    pub fn op(&self, v: NodeId) -> &Operator {
        &self.ops[v.idx()]
    }

    /// All operators, indexed by node id.
    #[inline]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// The channel on edge `e`.
    #[inline]
    pub fn channel(&self, e: EdgeId) -> &Channel {
        &self.channels[e.idx()]
    }

    /// All channels, indexed by edge id.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Endpoints `(src, dst)` of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (s, d) = self.edges[e.idx()];
        (NodeId(s), NodeId(d))
    }

    /// Raw endpoint list, indexed by edge id.
    #[inline]
    pub fn edge_list(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Iterate over `(EdgeId, src, dst)`.
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| (EdgeId(i as u32), NodeId(s), NodeId(d)))
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.ops.len() as u32).map(NodeId)
    }

    /// Forward CSR adjacency (edges bucketed by source node, ascending
    /// edge ids per bucket). The tape-free inference path pools over this
    /// directly instead of re-deriving adjacency from the edge list.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out_adj
    }

    /// Reverse CSR adjacency (edges bucketed by destination node).
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.in_adj
    }

    /// `(neighbour, edge)` pairs for outgoing edges of `v`.
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.out_adj
            .neighbors(v.0)
            .map(|(n, e)| (NodeId(n), EdgeId(e)))
    }

    /// `(neighbour, edge)` pairs for incoming edges of `v`.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.in_adj
            .neighbors(v.0)
            .map(|(n, e)| (NodeId(n), EdgeId(e)))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj.degree(v.0)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj.degree(v.0)
    }

    /// Nodes with no incoming edges (stream sources).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Nodes with no outgoing edges (stream sinks).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// A topological ordering of the nodes (sources first).
    #[inline]
    pub fn topo_order(&self) -> &[u32] {
        &self.topo_order
    }

    /// Total instructions per "wave" of tuples: `Σ_v ipt_v` (topology-free
    /// proxy for graph computational weight).
    pub fn total_ipt(&self) -> f64 {
        self.ops.iter().map(|o| o.ipt).sum()
    }

    /// Mutable access to operator costs (used by the workload assigner when
    /// normalising total load — topology is immutable).
    pub fn ops_mut(&mut self) -> &mut [Operator] {
        &mut self.ops
    }

    /// Mutable access to channel costs.
    pub fn channels_mut(&mut self) -> &mut [Channel] {
        &mut self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> StreamGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(10.0));
        let n1 = b.add_node(Operator::new(20.0));
        let n2 = b.add_node(Operator::new(30.0));
        let n3 = b.add_node(Operator::new(40.0));
        b.add_edge(n0, n1, Channel::new(8.0)).unwrap();
        b.add_edge(n0, n2, Channel::new(8.0)).unwrap();
        b.add_edge(n1, n3, Channel::new(4.0)).unwrap();
        b.add_edge(n2, n3, Channel::new(4.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0usize; g.num_nodes()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for (_, s, d) in g.edges_iter() {
            assert!(pos[s.idx()] < pos[d.idx()], "{s} must precede {d}");
        }
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(1.0));
        assert_eq!(
            b.add_edge(n0, n0, Channel::new(1.0)),
            Err(GraphError::SelfLoop { node: 0 })
        );
    }

    #[test]
    fn rejects_cycle() {
        let ops = vec![Operator::new(1.0); 3];
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let chans = vec![Channel::new(1.0); 3];
        assert_eq!(
            StreamGraph::from_parts(ops, edges, chans),
            Err(GraphError::Cycle)
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let ops = vec![Operator::new(1.0); 2];
        let edges = vec![(0, 1), (0, 1)];
        let chans = vec![Channel::new(1.0); 2];
        assert_eq!(
            StreamGraph::from_parts(ops, edges, chans),
            Err(GraphError::DuplicateEdge { src: 0, dst: 1 })
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            StreamGraph::from_parts(vec![], vec![], vec![]),
            Err(GraphError::Empty)
        );
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let ops = vec![Operator::new(1.0)];
        let edges = vec![(0, 5)];
        let chans = vec![Channel::new(1.0)];
        assert!(matches!(
            StreamGraph::from_parts(ops, edges, chans),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn adjacency_is_consistent_with_edge_list() {
        let g = diamond();
        for (e, s, d) in g.edges_iter() {
            assert!(g.out_edges(s).any(|(n, ee)| n == d && ee == e));
            assert!(g.in_edges(d).any(|(n, ee)| n == s && ee == e));
        }
    }
}
