//! Device placements (the output of every allocator).

use crate::graph::StreamGraph;
use serde::{Deserialize, Serialize};

/// An assignment of every operator to a device: `device_of[v]` is the device
/// id of node `v`. Device ids are `0..cluster.devices`; a placement may use
/// only a subset of the available devices (the excess-device setting of the
/// paper depends on this).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    device_of: Vec<u32>,
}

impl Placement {
    /// Wrap a raw assignment vector.
    pub fn new(device_of: Vec<u32>) -> Self {
        Self { device_of }
    }

    /// All nodes on device 0.
    pub fn all_on_one(num_nodes: usize) -> Self {
        Self {
            device_of: vec![0; num_nodes],
        }
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.device_of.len()
    }

    /// True when no nodes are placed.
    pub fn is_empty(&self) -> bool {
        self.device_of.is_empty()
    }

    /// Device of node `v`.
    #[inline]
    pub fn device(&self, v: usize) -> u32 {
        self.device_of[v]
    }

    /// The raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.device_of
    }

    /// Highest device id referenced plus one (0 for an empty placement).
    pub fn max_device_bound(&self) -> usize {
        self.device_of
            .iter()
            .map(|&d| d as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of *distinct* devices actually used.
    pub fn devices_used(&self) -> usize {
        let bound = self.max_device_bound();
        let mut seen = vec![false; bound];
        for &d in &self.device_of {
            seen[d as usize] = true;
        }
        seen.into_iter().filter(|&s| s).count()
    }

    /// Lift a placement of a coarse graph back to the original graph via the
    /// node map produced by a [`crate::Coarsening`]: original node `v` goes
    /// where its coarse node went.
    pub fn lift(coarse: &Placement, node_map: &[u32]) -> Self {
        let device_of = node_map
            .iter()
            .map(|&c| coarse.device(c as usize))
            .collect();
        Self { device_of }
    }

    /// Number of edges whose endpoints sit on different devices (the cut).
    pub fn cut_edges(&self, graph: &StreamGraph) -> usize {
        graph
            .edge_list()
            .iter()
            .filter(|&&(s, d)| self.device_of[s as usize] != self.device_of[d as usize])
            .count()
    }

    /// Validate against a graph and device count.
    pub fn validate(&self, graph: &StreamGraph, devices: usize) -> bool {
        self.device_of.len() == graph.num_nodes()
            && self.device_of.iter().all(|&d| (d as usize) < devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn path3() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(1.0));
        let n1 = b.add_node(Operator::new(1.0));
        let n2 = b.add_node(Operator::new(1.0));
        b.add_edge(n0, n1, Channel::new(1.0)).unwrap();
        b.add_edge(n1, n2, Channel::new(1.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn cut_edges_counts_cross_device_edges() {
        let g = path3();
        assert_eq!(Placement::new(vec![0, 0, 0]).cut_edges(&g), 0);
        assert_eq!(Placement::new(vec![0, 0, 1]).cut_edges(&g), 1);
        assert_eq!(Placement::new(vec![0, 1, 0]).cut_edges(&g), 2);
    }

    #[test]
    fn devices_used_ignores_gaps() {
        let p = Placement::new(vec![0, 5, 5, 0]);
        assert_eq!(p.devices_used(), 2);
        assert_eq!(p.max_device_bound(), 6);
    }

    #[test]
    fn lift_follows_node_map() {
        let coarse = Placement::new(vec![3, 7]);
        let node_map = [0u32, 0, 1, 1, 0];
        let lifted = Placement::lift(&coarse, &node_map);
        assert_eq!(lifted.as_slice(), &[3, 3, 7, 7, 3]);
    }

    #[test]
    fn validate_checks_len_and_range() {
        let g = path3();
        assert!(Placement::new(vec![0, 1, 2]).validate(&g, 3));
        assert!(!Placement::new(vec![0, 1]).validate(&g, 3));
        assert!(!Placement::new(vec![0, 1, 3]).validate(&g, 3));
    }
}
