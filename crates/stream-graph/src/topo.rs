//! Topological ordering / cycle detection (Kahn's algorithm).

/// Return a topological order of `0..n` under `edges`, or `None` if the
/// graph contains a directed cycle.
pub fn topological_order(n: usize, edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut indeg = vec![0u32; n];
    let mut adj_count = vec![0u32; n + 1];
    for &(s, d) in edges {
        indeg[d as usize] += 1;
        adj_count[s as usize + 1] += 1;
    }
    for i in 0..n {
        adj_count[i + 1] += adj_count[i];
    }
    let mut cursor = adj_count.clone();
    let mut adj = vec![0u32; edges.len()];
    for &(s, d) in edges {
        adj[cursor[s as usize] as usize] = d;
        cursor[s as usize] += 1;
    }

    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    // Process as a FIFO for a BFS-like "wavefront" order (sources first).
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        let lo = adj_count[v as usize] as usize;
        let hi = adj_count[v as usize + 1] as usize;
        for &w in &adj[lo..hi] {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Longest path length (in edges) from any source to each node; the "depth"
/// of a node in the dataflow. Panics if `order` is not a valid topological
/// order of the edges.
pub fn depths(n: usize, edges: &[(u32, u32)], order: &[u32]) -> Vec<u32> {
    let mut depth = vec![0u32; n];
    let mut pos = vec![u32::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    // Iterate edges grouped by topological position of the source.
    let mut edges_by_pos: Vec<(u32, u32)> = edges.to_vec();
    edges_by_pos.sort_unstable_by_key(|&(s, _)| pos[s as usize]);
    for &(s, d) in &edges_by_pos {
        assert!(
            pos[s.max(d) as usize] != u32::MAX,
            "order must cover all nodes"
        );
        assert!(
            pos[s as usize] < pos[d as usize],
            "order must be topological"
        );
        depth[d as usize] = depth[d as usize].max(depth[s as usize] + 1);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_chain() {
        let order = topological_order(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn detects_cycle() {
        assert!(topological_order(2, &[(0, 1), (1, 0)]).is_none());
    }

    #[test]
    fn handles_disconnected() {
        let order = topological_order(4, &[(2, 3)]).unwrap();
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn depths_of_diamond() {
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let order = topological_order(4, &edges).unwrap();
        let d = depths(4, &edges, &order);
        assert_eq!(d, vec![0, 1, 1, 2]);
    }
}
