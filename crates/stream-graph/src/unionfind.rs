//! Union-find (disjoint set union) with path halving and union by size.
//!
//! Used to contract collapsed edges into coarse nodes.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.num_sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Compress into a dense labelling `element -> 0..num_sets`, stable in
    /// the order representatives are first encountered.
    pub fn dense_labels(&mut self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut label = vec![u32::MAX; n];
        let mut out = vec![0u32; n];
        let mut next = 0u32;
        for x in 0..n as u32 {
            let r = self.find(x);
            if label[r as usize] == u32::MAX {
                label[r as usize] = next;
                next += 1;
            }
            out[x as usize] = label[r as usize];
        }
        (out, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(0), 2);
    }

    #[test]
    fn dense_labels_are_stable_and_dense() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(1, 2);
        let (labels, k) = uf.dense_labels();
        assert_eq!(k, 4);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[4], labels[5]);
        assert_eq!(labels[0], 0); // first encountered keeps first label
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(2, 3);
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(3), 4);
    }
}
