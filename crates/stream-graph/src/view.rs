//! A minimal topology view shared by learned models.
//!
//! The GNN encoders only need node/edge counts and the directed edge list.
//! Both [`crate::StreamGraph`] (for direct placement baselines) and
//! [`crate::CoarseGraph`] (for placing coarsened graphs, which may contain
//! directed cycles) provide this view.

use crate::cluster::ClusterSpec;
use crate::coarsen::CoarseGraph;
use crate::features::{EdgeFeatures, GraphFeatures, NodeFeatures, EDGE_FEATURES, NODE_FEATURES};
use crate::graph::StreamGraph;

/// Borrowed topology: node count plus directed edges.
#[derive(Debug, Clone, Copy)]
pub struct TopoView<'a> {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Directed edges `(src, dst)`.
    pub edges: &'a [(u32, u32)],
}

impl StreamGraph {
    /// Topology view of this graph.
    pub fn topo_view(&self) -> TopoView<'_> {
        TopoView {
            num_nodes: self.num_nodes(),
            edges: self.edge_list(),
        }
    }
}

impl CoarseGraph {
    /// Topology view of this coarse graph.
    pub fn topo_view(&self) -> TopoView<'_> {
        TopoView {
            num_nodes: self.num_nodes(),
            edges: &self.edges,
        }
    }
}

impl GraphFeatures {
    /// Features of a coarse graph under `cluster` — the same layout as
    /// [`GraphFeatures::extract`] so learned placers can run on coarse
    /// graphs: CPU utilisation, outgoing traffic saturation, degrees,
    /// source flag; depth is undefined on possibly-cyclic coarse graphs
    /// and set to a neutral 0.5.
    pub fn from_coarse(coarse: &CoarseGraph, cluster: &ClusterSpec) -> Self {
        let n = coarse.num_nodes();
        let m = coarse.num_edges();
        let cap = cluster.instr_per_sec();
        let bw = cluster.link_bytes_per_sec();

        let mut in_deg = vec![0usize; n];
        let mut out_deg = vec![0usize; n];
        let mut out_traffic = vec![0.0f64; n];
        for (i, &(s, d)) in coarse.edges.iter().enumerate() {
            out_deg[s as usize] += 1;
            in_deg[d as usize] += 1;
            out_traffic[s as usize] += coarse.edge_traffic[i];
        }

        let mut node = Vec::with_capacity(n * NODE_FEATURES);
        for v in 0..n {
            node.push((coarse.node_cpu[v] / cap) as f32);
            node.push((out_traffic[v] / bw) as f32);
            node.push(((1 + in_deg[v]) as f32).ln());
            node.push(((1 + out_deg[v]) as f32).ln());
            node.push(if in_deg[v] == 0 { 1.0 } else { 0.0 });
            node.push(0.5);
        }

        let mut edge = Vec::with_capacity(m * EDGE_FEATURES);
        for (i, &(s, _)) in coarse.edges.iter().enumerate() {
            let traffic = coarse.edge_traffic[i];
            let sat = traffic / bw;
            edge.push(sat as f32);
            edge.push((1.0 + sat).ln() as f32);
            // No tuple-rate notion on coarse edges; reuse saturation scale.
            edge.push(sat.min(1.0) as f32);
            let src_out = out_traffic[s as usize];
            edge.push(if src_out > 0.0 {
                (traffic / src_out) as f32
            } else {
                0.0
            });
        }

        Self {
            node: NodeFeatures(node),
            edge: EdgeFeatures(edge),
            num_nodes: n,
            num_edges: m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::Coarsening;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};
    use crate::rates::TupleRates;

    fn diamond() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(10.0));
        let n1 = b.add_node(Operator::new(20.0));
        let n2 = b.add_node(Operator::new(30.0));
        let n3 = b.add_node(Operator::new(40.0));
        b.add_edge(n0, n1, Channel::new(8.0)).unwrap();
        b.add_edge(n0, n2, Channel::new(8.0)).unwrap();
        b.add_edge(n1, n3, Channel::new(4.0)).unwrap();
        b.add_edge(n2, n3, Channel::new(4.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn stream_view_matches_graph() {
        let g = diamond();
        let v = g.topo_view();
        assert_eq!(v.num_nodes, 4);
        assert_eq!(v.edges.len(), 4);
    }

    #[test]
    fn coarse_view_and_features() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let c = Coarsening::from_collapse(&g, &rates, &[true, false, false, false], None, None);
        let view = c.coarse.topo_view();
        assert_eq!(view.num_nodes, 3);
        let cluster = ClusterSpec::paper_medium(2);
        let f = GraphFeatures::from_coarse(&c.coarse, &cluster);
        assert_eq!(f.num_nodes, 3);
        assert_eq!(f.node.0.len(), 3 * NODE_FEATURES);
        assert_eq!(f.edge.0.len(), view.edges.len() * EDGE_FEATURES);
        assert!(f.node.0.iter().all(|x| x.is_finite()));
        assert!(f.edge.0.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn coarse_features_identity_match_scale_of_stream_features() {
        // For the identity coarsening, CPU utilisation features must agree
        // with the stream-graph extractor.
        let g = diamond();
        let cluster = ClusterSpec::paper_medium(2);
        let rates = TupleRates::compute(&g, 100.0);
        let ident = Coarsening::identity(&g, &rates);
        let cf = GraphFeatures::from_coarse(&ident.coarse, &cluster);
        let sf = GraphFeatures::extract_with_rates(&g, &cluster, &rates);
        for v in 0..4 {
            let a = cf.node.0[v * NODE_FEATURES];
            let b = sf.node.0[v * NODE_FEATURES];
            assert!((a - b).abs() < 1e-6, "cpu feature mismatch at node {v}");
        }
    }
}
