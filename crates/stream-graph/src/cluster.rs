//! The device cluster a stream graph is allocated onto.

use serde::{Deserialize, Serialize};

/// A homogeneous cluster of computing devices, mirroring the paper's
/// experimental environment (§V): devices with a fixed MIPS capacity
/// connected by links of fixed bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of available devices.
    pub devices: usize,
    /// Per-device compute capacity in MIPS (millions of instructions per
    /// second). The paper uses 1.25e3 MIPS.
    pub mips: f64,
    /// Link bandwidth between any two devices, in megabits per second.
    /// The paper uses 1000 Mbps (medium graphs) and 1500 Mbps (large).
    pub link_mbps: f64,
}

impl ClusterSpec {
    /// Create a cluster spec.
    pub fn new(devices: usize, mips: f64, link_mbps: f64) -> Self {
        assert!(devices > 0, "cluster must have at least one device");
        assert!(mips > 0.0 && link_mbps > 0.0, "capacities must be positive");
        Self {
            devices,
            mips,
            link_mbps,
        }
    }

    /// The paper's medium-graph cluster: 1.25e3 MIPS devices, 1000 Mbps.
    pub fn paper_medium(devices: usize) -> Self {
        Self::new(devices, 1.25e3, 1000.0)
    }

    /// The paper's large/x-large cluster: 1.25e3 MIPS devices, 1500 Mbps.
    pub fn paper_large(devices: usize) -> Self {
        Self::new(devices, 1.25e3, 1500.0)
    }

    /// Per-device compute capacity in instructions/second.
    #[inline]
    pub fn instr_per_sec(&self) -> f64 {
        self.mips * 1e6
    }

    /// Link bandwidth in bytes/second.
    #[inline]
    pub fn link_bytes_per_sec(&self) -> f64 {
        self.link_mbps * 1e6 / 8.0
    }

    /// Total cluster compute capacity in instructions/second.
    #[inline]
    pub fn total_instr_per_sec(&self) -> f64 {
        self.instr_per_sec() * self.devices as f64
    }

    /// The excess-device variant of this cluster (§V): node CPU demand and
    /// bandwidth are reduced by 33% *on the workload side*; the cluster-side
    /// effect is a 33% lower link bandwidth.
    pub fn with_reduced_bandwidth(&self, factor: f64) -> Self {
        Self {
            link_mbps: self.link_mbps * factor,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let c = ClusterSpec::paper_medium(10);
        assert_eq!(c.devices, 10);
        assert!((c.instr_per_sec() - 1.25e9).abs() < 1.0);
        assert!((c.link_bytes_per_sec() - 125e6).abs() < 1.0);
        assert!((c.total_instr_per_sec() - 1.25e10).abs() < 10.0);
    }

    #[test]
    fn reduced_bandwidth() {
        let c = ClusterSpec::paper_large(10).with_reduced_bandwidth(0.67);
        assert!((c.link_mbps - 1005.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        ClusterSpec::new(0, 1.0, 1.0);
    }
}
