//! Steady-state tuple rates.
//!
//! Given a source rate `I` (tuples/second entering every source operator),
//! the per-node and per-edge rates follow from the topology by one pass in
//! topological order: each operator forwards its output on every outgoing
//! edge scaled by the edge's selectivity, and an operator's input rate is the
//! sum of its incoming edge rates.
//!
//! All downstream load models (CPU demand `R_v * ipt_v`, edge traffic
//! `R_e * payload_e`) are linear in `I`, which is what makes the analytic
//! bottleneck throughput in `spg-sim` exact.

use crate::graph::{NodeId, StreamGraph};
use serde::{Deserialize, Serialize};

/// Per-node and per-edge steady-state tuple rates for a given source rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TupleRates {
    /// Source rate `I` the rates were computed for.
    pub source_rate: f64,
    /// Tuples/second processed by each node.
    pub node: Vec<f64>,
    /// Tuples/second flowing on each edge.
    pub edge: Vec<f64>,
}

impl TupleRates {
    /// Compute rates for `graph` at `source_rate`.
    pub fn compute(graph: &StreamGraph, source_rate: f64) -> Self {
        assert!(source_rate >= 0.0, "source rate must be non-negative");
        let n = graph.num_nodes();
        let mut node = vec![0.0f64; n];
        let mut edge = vec![0.0f64; graph.num_edges()];
        for &v in graph.topo_order() {
            let v = NodeId(v);
            if graph.in_degree(v) == 0 {
                node[v.idx()] = source_rate;
            }
            let r = node[v.idx()];
            for (w, e) in graph.out_edges(v) {
                let ch = graph.channel(e);
                let re = r * ch.selectivity;
                edge[e.idx()] = re;
                node[w.idx()] += re;
            }
        }
        Self {
            source_rate,
            node,
            edge,
        }
    }

    /// CPU demand of each node in instructions/second: `R_v * ipt_v`.
    pub fn cpu_demand(&self, graph: &StreamGraph) -> Vec<f64> {
        graph
            .ops()
            .iter()
            .zip(&self.node)
            .map(|(op, &r)| op.ipt * r)
            .collect()
    }

    /// Traffic of each edge in bytes/second: `R_e * payload_e`.
    pub fn edge_traffic(&self, graph: &StreamGraph) -> Vec<f64> {
        graph
            .channels()
            .iter()
            .zip(&self.edge)
            .map(|(ch, &r)| ch.payload * r)
            .collect()
    }

    /// Total CPU demand of the whole graph (instructions/second).
    pub fn total_cpu_demand(&self, graph: &StreamGraph) -> f64 {
        self.cpu_demand(graph).iter().sum()
    }

    /// Total traffic over all edges (bytes/second) — an upper bound on
    /// network load reached only when every edge crosses devices.
    pub fn total_edge_traffic(&self, graph: &StreamGraph) -> f64 {
        self.edge_traffic(graph).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn chain(selectivities: &[f64]) -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let mut prev = b.add_node(Operator::new(1.0));
        for &s in selectivities {
            let next = b.add_node(Operator::new(1.0));
            b.add_edge(prev, next, Channel::with_selectivity(10.0, s))
                .unwrap();
            prev = next;
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_rates_multiply_selectivities() {
        let g = chain(&[0.5, 0.4]);
        let r = TupleRates::compute(&g, 1000.0);
        assert_eq!(r.node, vec![1000.0, 500.0, 200.0]);
        assert_eq!(r.edge, vec![500.0, 200.0]);
    }

    #[test]
    fn fan_in_sums() {
        // 0 -> 2, 1 -> 2 with two sources
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(1.0));
        let c = b.add_node(Operator::new(1.0));
        let m = b.add_node(Operator::new(2.0));
        b.add_edge(a, m, Channel::new(4.0)).unwrap();
        b.add_edge(c, m, Channel::new(4.0)).unwrap();
        let g = b.finish().unwrap();
        let r = TupleRates::compute(&g, 100.0);
        assert_eq!(r.node[m.idx()], 200.0);
        let cpu = r.cpu_demand(&g);
        assert_eq!(cpu[m.idx()], 400.0);
        let traffic = r.edge_traffic(&g);
        assert_eq!(traffic, vec![400.0, 400.0]);
    }

    #[test]
    fn zero_rate_is_all_zero() {
        let g = chain(&[1.0, 1.0]);
        let r = TupleRates::compute(&g, 0.0);
        assert!(r.node.iter().all(|&x| x == 0.0));
        assert!(r.edge.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn rates_scale_linearly() {
        let g = chain(&[0.7, 1.3]);
        let r1 = TupleRates::compute(&g, 100.0);
        let r2 = TupleRates::compute(&g, 200.0);
        for (a, b) in r1.node.iter().zip(&r2.node) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }
}
