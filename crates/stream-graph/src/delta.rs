//! Graph deltas: the mutation language of incremental re-allocation.
//!
//! A running stream job drifts — operators are hot-swapped, channels
//! rewired, rates ramp, devices drop out. A [`GraphDelta`] names one
//! such drift step against a *prior* [`StreamGraph`] so the allocator
//! can warm-start from the prior placement instead of re-running the
//! full pipeline (see `spg-partition`'s `incremental` module and
//! DESIGN.md §15).
//!
//! ## Id space
//!
//! Delta endpoints are expressed in the **prior** graph's node ids.
//! Nodes added by the delta get *virtual* ids `n..n+a` (where `n` is
//! the prior node count and `a = add_nodes.len()`), in `add_nodes`
//! order, so `add_edges` can wire new nodes to old ones and to each
//! other. [`GraphDelta::apply`] compacts surviving nodes in prior
//! order, appends the added nodes, and remaps every edge — the
//! [`AppliedDelta::origin`] table records where each new node came
//! from, which is exactly what placement projection needs.
//!
//! Removing a node implicitly removes its incident edges (the normal
//! case for operator removal); `remove_edges` is for rewiring between
//! surviving nodes and must name edges that exist.

use crate::graph::{Channel, GraphError, Operator, StreamGraph};
use crate::serialize::validate_graph;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Churn ratio above which warm-starting is not worth it and the
/// incremental path falls back to the full coarsening pipeline. Lives
/// here (not in `spg-partition`) so the drift generator in `spg-gen`
/// can target sub-threshold deltas without a dependency cycle.
pub const DEFAULT_CHURN_THRESHOLD: f64 = 0.25;

/// One drift step against a prior [`StreamGraph`]. All fields are
/// optional on the wire; the default is the empty delta (a pure
/// re-validation of the prior placement).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// Prior node ids to remove (incident edges go with them).
    pub remove_nodes: Vec<u32>,
    /// Operators to append; the `j`-th gets virtual id `n + j`.
    pub add_nodes: Vec<Operator>,
    /// Edges between surviving prior nodes to remove (must exist).
    pub remove_edges: Vec<(u32, u32)>,
    /// Edges to add, endpoints in the extended id space.
    pub add_edges: Vec<(u32, u32)>,
    /// Channel of each added edge (parallel to `add_edges`).
    pub add_channels: Vec<Channel>,
    /// Per-node cost overrides `(prior node, new ipt)`.
    pub set_ipt: Vec<(u32, f64)>,
    /// Prior edges whose channel is replaced (paired with
    /// `set_channels`).
    pub set_channel_edges: Vec<(u32, u32)>,
    /// Replacement channels (parallel to `set_channel_edges`).
    pub set_channels: Vec<Channel>,
    /// New device count (device loss/gain); `None` keeps the prior
    /// cluster.
    pub devices: Option<usize>,
    /// New source rate (rate ramp); `None` keeps the prior rate.
    pub source_rate: Option<f64>,
}

/// A delta applied to a prior graph: the mutated graph plus the
/// node-provenance table placement projection runs on.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The validated post-delta graph.
    pub graph: StreamGraph,
    /// For each new node, the prior node it came from (`None` for nodes
    /// the delta added).
    pub origin: Vec<Option<u32>>,
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The delta itself is inconsistent with the prior graph (bad
    /// index, missing edge, mismatched parallel arrays, ...).
    BadDelta(String),
    /// The delta is well-formed but the mutated graph fails structural
    /// or numeric validation (cycle, empty, non-finite cost, ...).
    InvalidResult(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BadDelta(d) => write!(f, "bad delta: {d}"),
            DeltaError::InvalidResult(d) => write!(f, "delta result invalid: {d}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// True when applying this delta is the identity (placement and
    /// throughput of the prior response remain exact).
    pub fn is_empty(&self) -> bool {
        self.remove_nodes.is_empty()
            && self.add_nodes.is_empty()
            && self.remove_edges.is_empty()
            && self.add_edges.is_empty()
            && self.set_ipt.is_empty()
            && self.set_channel_edges.is_empty()
            && self.devices.is_none()
            && self.source_rate.is_none()
    }

    /// Topological churn: mutated nodes + edges over the prior graph's
    /// size. Weight/rate/device changes are churn-free — they are the
    /// cases warm-started refinement handles best.
    pub fn churn(&self, prior: &StreamGraph) -> f64 {
        let mutated = self.remove_nodes.len()
            + self.add_nodes.len()
            + self.remove_edges.len()
            + self.add_edges.len();
        mutated as f64 / (prior.num_nodes() + prior.num_edges()).max(1) as f64
    }

    /// Cheap shape checks that need no prior graph: parallel arrays
    /// line up, overrides are sane. Used by the wire parser so a
    /// malformed delta is refused before it is routed.
    pub fn validate_shape(&self) -> Result<(), DeltaError> {
        if self.add_edges.len() != self.add_channels.len() {
            return Err(DeltaError::BadDelta(format!(
                "add_edges/add_channels length mismatch ({} vs {})",
                self.add_edges.len(),
                self.add_channels.len()
            )));
        }
        if self.set_channel_edges.len() != self.set_channels.len() {
            return Err(DeltaError::BadDelta(format!(
                "set_channel_edges/set_channels length mismatch ({} vs {})",
                self.set_channel_edges.len(),
                self.set_channels.len()
            )));
        }
        if self.devices == Some(0) {
            return Err(DeltaError::BadDelta(
                "devices must be at least 1".to_string(),
            ));
        }
        if let Some(sr) = self.source_rate {
            if !(sr.is_finite() && sr > 0.0) {
                return Err(DeltaError::BadDelta(format!(
                    "source_rate must be finite positive, got {sr}"
                )));
            }
        }
        Ok(())
    }

    /// Apply to `prior`, producing the mutated graph (validated through
    /// the same funnel as dataset and wire graphs) and the provenance
    /// table.
    pub fn apply(&self, prior: &StreamGraph) -> Result<AppliedDelta, DeltaError> {
        self.validate_shape()?;
        let n = prior.num_nodes();
        let bad = |msg: String| DeltaError::BadDelta(msg);

        let mut removed = vec![false; n];
        for &v in &self.remove_nodes {
            let Some(slot) = removed.get_mut(v as usize) else {
                return Err(bad(format!("remove_nodes: n{v} out of range ({n} nodes)")));
            };
            if *slot {
                return Err(bad(format!("remove_nodes: n{v} listed twice")));
            }
            *slot = true;
        }

        // Cost overrides act on the prior id space, before compaction.
        let mut ops: Vec<Operator> = prior.ops().to_vec();
        for &(v, ipt) in &self.set_ipt {
            match removed.get(v as usize) {
                None => return Err(bad(format!("set_ipt: n{v} out of range ({n} nodes)"))),
                Some(true) => return Err(bad(format!("set_ipt: n{v} is being removed"))),
                Some(false) => ops[v as usize].ipt = ipt,
            }
        }

        // Old id (extended with virtual ids for added nodes) → new id.
        let mut remap: Vec<Option<u32>> = Vec::with_capacity(n + self.add_nodes.len());
        let mut origin: Vec<Option<u32>> = Vec::new();
        let mut new_ops: Vec<Operator> = Vec::new();
        for (v, &gone) in removed.iter().enumerate() {
            if gone {
                remap.push(None);
            } else {
                remap.push(Some(new_ops.len() as u32));
                origin.push(Some(v as u32));
                new_ops.push(ops[v]);
            }
        }
        for op in &self.add_nodes {
            remap.push(Some(new_ops.len() as u32));
            origin.push(None);
            new_ops.push(*op);
        }

        // Prior edges: channel overrides, explicit removals, implicit
        // removals of edges touching removed nodes.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(prior.num_edges());
        let mut channels: Vec<Channel> = Vec::with_capacity(prior.num_edges());
        let mut chan_override: Vec<Option<Channel>> = vec![None; prior.num_edges()];
        for (&(s, d), &ch) in self.set_channel_edges.iter().zip(&self.set_channels) {
            let Some(e) = prior.edge_list().iter().position(|&p| p == (s, d)) else {
                return Err(bad(format!("set_channel: no prior edge n{s} -> n{d}")));
            };
            chan_override[e] = Some(ch);
        }
        let mut drop_edge: Vec<bool> = vec![false; prior.num_edges()];
        for &(s, d) in &self.remove_edges {
            let Some(e) = prior.edge_list().iter().position(|&p| p == (s, d)) else {
                return Err(bad(format!("remove_edges: no prior edge n{s} -> n{d}")));
            };
            if drop_edge[e] {
                return Err(bad(format!("remove_edges: n{s} -> n{d} listed twice")));
            }
            drop_edge[e] = true;
        }
        for (e, &(s, d)) in prior.edge_list().iter().enumerate() {
            if drop_edge[e] {
                continue;
            }
            let (Some(ns), Some(nd)) = (remap[s as usize], remap[d as usize]) else {
                continue; // endpoint removed → edge goes with it
            };
            edges.push((ns, nd));
            channels.push(chan_override[e].unwrap_or(prior.channels()[e]));
        }

        // Added edges, endpoints in the extended id space.
        for (&(s, d), &ch) in self.add_edges.iter().zip(&self.add_channels) {
            let ext = remap.len();
            let lookup = |v: u32| -> Result<u32, DeltaError> {
                match remap.get(v as usize) {
                    None => Err(bad(format!(
                        "add_edges: n{v} out of range ({ext} incl. added)"
                    ))),
                    Some(None) => Err(bad(format!("add_edges: endpoint n{v} is being removed"))),
                    Some(Some(nv)) => Ok(*nv),
                }
            };
            edges.push((lookup(s)?, lookup(d)?));
            channels.push(ch);
        }

        let graph = StreamGraph::from_parts(new_ops, edges, channels).map_err(|e| match e {
            // An empty or cyclic result is the delta's fault in spirit,
            // but it is the *result* that is unusable — name it so.
            GraphError::Empty | GraphError::Cycle => DeltaError::InvalidResult(e.to_string()),
            other => DeltaError::BadDelta(other.to_string()),
        })?;
        let graph = validate_graph(&graph).map_err(|e| DeltaError::InvalidResult(e.to_string()))?;
        Ok(AppliedDelta { graph, origin })
    }
}

// Hand-rolled wire codec (the vendored serde derive has no
// optional-field support): empty fields are omitted so a small delta
// serializes small, and every field is optional on the way in.
impl Serialize for GraphDelta {
    fn serialize(&self) -> Value {
        let mut fields = Vec::new();
        if !self.remove_nodes.is_empty() {
            fields.push(("remove_nodes".to_string(), self.remove_nodes.serialize()));
        }
        if !self.add_nodes.is_empty() {
            fields.push(("add_nodes".to_string(), self.add_nodes.serialize()));
        }
        if !self.remove_edges.is_empty() {
            fields.push(("remove_edges".to_string(), self.remove_edges.serialize()));
        }
        if !self.add_edges.is_empty() {
            fields.push(("add_edges".to_string(), self.add_edges.serialize()));
            fields.push(("add_channels".to_string(), self.add_channels.serialize()));
        }
        if !self.set_ipt.is_empty() {
            fields.push(("set_ipt".to_string(), self.set_ipt.serialize()));
        }
        if !self.set_channel_edges.is_empty() {
            fields.push((
                "set_channel_edges".to_string(),
                self.set_channel_edges.serialize(),
            ));
            fields.push(("set_channels".to_string(), self.set_channels.serialize()));
        }
        if let Some(d) = self.devices {
            fields.push(("devices".to_string(), d.serialize()));
        }
        if let Some(sr) = self.source_rate {
            fields.push(("source_rate".to_string(), sr.serialize()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for GraphDelta {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, serde::Error> {
            match v.field(name) {
                Ok(Value::Null) | Err(_) => Ok(None),
                Ok(x) => T::deserialize(x).map(Some),
            }
        }
        Ok(GraphDelta {
            remove_nodes: opt(v, "remove_nodes")?.unwrap_or_default(),
            add_nodes: opt(v, "add_nodes")?.unwrap_or_default(),
            remove_edges: opt(v, "remove_edges")?.unwrap_or_default(),
            add_edges: opt(v, "add_edges")?.unwrap_or_default(),
            add_channels: opt(v, "add_channels")?.unwrap_or_default(),
            set_ipt: opt(v, "set_ipt")?.unwrap_or_default(),
            set_channel_edges: opt(v, "set_channel_edges")?.unwrap_or_default(),
            set_channels: opt(v, "set_channels")?.unwrap_or_default(),
            devices: opt(v, "devices")?,
            source_rate: opt(v, "source_rate")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StreamGraphBuilder;

    /// 0 → 1 → 2 chain with one skip edge 0 → 2.
    fn diamondish() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        let d = b.add_node(Operator::new(300.0));
        b.add_edge(a, c, Channel::new(8.0)).unwrap();
        b.add_edge(c, d, Channel::new(16.0)).unwrap();
        b.add_edge(a, d, Channel::new(4.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamondish();
        let delta = GraphDelta::default();
        assert!(delta.is_empty());
        assert_eq!(delta.churn(&g), 0.0);
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph, g);
        assert_eq!(applied.origin, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn node_removal_takes_incident_edges_and_compacts() {
        let g = diamondish();
        let delta = GraphDelta {
            remove_nodes: vec![1],
            ..GraphDelta::default()
        };
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph.num_nodes(), 2);
        // Only the skip edge 0 → 2 survives, remapped to 0 → 1.
        assert_eq!(applied.graph.edge_list(), &[(0, 1)]);
        assert_eq!(applied.graph.channels()[0].payload, 4.0);
        assert_eq!(applied.origin, vec![Some(0), Some(2)]);
    }

    #[test]
    fn hot_swap_adds_node_under_virtual_id() {
        let g = diamondish();
        // Replace node 1 with a cheaper operator wired identically; the
        // replacement's virtual id is 3 (= prior node count).
        let delta = GraphDelta {
            remove_nodes: vec![1],
            add_nodes: vec![Operator::new(50.0)],
            add_edges: vec![(0, 3), (3, 2)],
            add_channels: vec![Channel::new(8.0), Channel::new(16.0)],
            ..GraphDelta::default()
        };
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph.num_nodes(), 3);
        assert_eq!(applied.origin, vec![Some(0), Some(2), None]);
        let mut edges = applied.graph.edge_list().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 1)]);
        assert_eq!(applied.graph.ops()[2].ipt, 50.0);
    }

    #[test]
    fn weight_and_channel_overrides_apply_in_place() {
        let g = diamondish();
        let delta = GraphDelta {
            set_ipt: vec![(2, 999.0)],
            set_channel_edges: vec![(1, 2)],
            set_channels: vec![Channel::with_selectivity(64.0, 0.5)],
            source_rate: Some(123.0),
            ..GraphDelta::default()
        };
        assert!(!delta.is_empty());
        assert_eq!(delta.churn(&g), 0.0, "overrides are churn-free");
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph.ops()[2].ipt, 999.0);
        let e = applied
            .graph
            .edge_list()
            .iter()
            .position(|&p| p == (1, 2))
            .unwrap();
        assert_eq!(applied.graph.channels()[e].payload, 64.0);
        assert_eq!(applied.graph.channels()[e].selectivity, 0.5);
    }

    #[test]
    fn churn_counts_topology_only() {
        let g = diamondish(); // 3 nodes + 3 edges
        let delta = GraphDelta {
            remove_edges: vec![(0, 2)],
            add_nodes: vec![Operator::new(1.0)],
            add_edges: vec![(2, 3)],
            add_channels: vec![Channel::new(1.0)],
            devices: Some(2),
            ..GraphDelta::default()
        };
        assert_eq!(delta.churn(&g), 3.0 / 6.0);
    }

    #[test]
    fn bad_deltas_are_named() {
        let g = diamondish();
        let cases = vec![
            GraphDelta {
                remove_nodes: vec![9],
                ..GraphDelta::default()
            },
            GraphDelta {
                remove_nodes: vec![1, 1],
                ..GraphDelta::default()
            },
            GraphDelta {
                remove_edges: vec![(2, 0)],
                ..GraphDelta::default()
            },
            GraphDelta {
                add_edges: vec![(0, 1)],
                add_channels: vec![],
                ..GraphDelta::default()
            },
            GraphDelta {
                set_ipt: vec![(1, 5.0)],
                remove_nodes: vec![1],
                ..GraphDelta::default()
            },
            GraphDelta {
                devices: Some(0),
                ..GraphDelta::default()
            },
            GraphDelta {
                source_rate: Some(f64::NAN),
                ..GraphDelta::default()
            },
            GraphDelta {
                add_edges: vec![(0, 7)],
                add_channels: vec![Channel::new(1.0)],
                ..GraphDelta::default()
            },
        ];
        for delta in cases {
            assert!(
                matches!(delta.apply(&g), Err(DeltaError::BadDelta(_))),
                "{delta:?} should be BadDelta"
            );
        }
    }

    #[test]
    fn unusable_results_are_invalid_not_bad() {
        let g = diamondish();
        // Removing every node empties the graph.
        let all_gone = GraphDelta {
            remove_nodes: vec![0, 1, 2],
            ..GraphDelta::default()
        };
        assert!(matches!(
            all_gone.apply(&g),
            Err(DeltaError::InvalidResult(_))
        ));
        // A back-edge closes a cycle.
        let cyclic = GraphDelta {
            add_edges: vec![(2, 0)],
            add_channels: vec![Channel::new(1.0)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            cyclic.apply(&g),
            Err(DeltaError::InvalidResult(_))
        ));
        // A negative cost fails numeric validation.
        let negative = GraphDelta {
            set_ipt: vec![(0, -1.0)],
            ..GraphDelta::default()
        };
        assert!(matches!(
            negative.apply(&g),
            Err(DeltaError::InvalidResult(_))
        ));
    }

    #[test]
    fn wire_roundtrip_preserves_every_field() {
        let delta = GraphDelta {
            remove_nodes: vec![1],
            add_nodes: vec![Operator::new(50.0)],
            remove_edges: vec![(0, 2)],
            add_edges: vec![(0, 3)],
            add_channels: vec![Channel::with_selectivity(8.0, 0.25)],
            set_ipt: vec![(0, 10.0)],
            set_channel_edges: vec![(1, 2)],
            set_channels: vec![Channel::new(2.0)],
            devices: Some(4),
            source_rate: Some(5e3),
        };
        let text = serde_json::to_string(&delta).unwrap();
        let back: GraphDelta = serde_json::from_str(&text).unwrap();
        assert_eq!(back, delta);

        // The empty delta serializes to the empty object and back.
        let text = serde_json::to_string(&GraphDelta::default()).unwrap();
        assert_eq!(text, "{}");
        let back: GraphDelta = serde_json::from_str(&text).unwrap();
        assert!(back.is_empty());
    }
}
