//! # spg-graph
//!
//! Core data structures for stream-processing resource allocation:
//!
//! * [`StreamGraph`] — a directed acyclic graph of operators. Nodes carry the
//!   computational cost of an operator (instructions per tuple), edges carry
//!   the communication cost (payload bytes per tuple and selectivity).
//! * [`ClusterSpec`] — the homogeneous device cluster graphs are placed on
//!   (device count, per-device MIPS, link bandwidth).
//! * [`Placement`] — an assignment of every operator to a device.
//! * [`Coarsening`] — a contraction of a [`StreamGraph`] induced by a set of
//!   *collapsed edges* (the action space of the paper's RL coarsening model),
//!   producing a [`CoarseGraph`] plus the node mapping needed to lift a
//!   coarse placement back to the original graph.
//! * [`WeightedGraph`] — the undirected weighted view used by partitioners
//!   (node weight = CPU load, edge weight = traffic).
//!
//! The crate is dependency-light on purpose: every other crate in the
//! workspace (simulator, partitioner, RL model, baselines) builds on these
//! types.

pub mod cluster;
pub mod coarsen;
pub mod csr;
pub mod delta;
pub mod features;
pub mod graph;
pub mod hetero;
pub mod placement;
pub mod rates;
pub mod serialize;
pub mod topo;
pub mod unionfind;
pub mod view;
pub mod weighted;
pub mod wire;
mod wire_fast;

pub use cluster::ClusterSpec;
pub use coarsen::{CoarseGraph, Coarsening};
pub use csr::Csr;
pub use delta::{AppliedDelta, DeltaError, GraphDelta, DEFAULT_CHURN_THRESHOLD};
pub use features::{EdgeFeatures, GraphFeatures, NodeFeatures};
pub use graph::{Channel, EdgeId, GraphError, NodeId, Operator, StreamGraph, StreamGraphBuilder};
pub use hetero::HeteroClusterSpec;
pub use placement::Placement;
pub use rates::TupleRates;
pub use view::TopoView;
pub use weighted::WeightedGraph;

/// An allocator maps a stream graph onto a device cluster.
///
/// Implemented by every method compared in the paper: the Metis-style
/// multilevel partitioner, the learned baselines (Graph-enc-dec, GDP,
/// Hierarchical) and the coarsening-partitioning framework itself.
pub trait Allocator {
    /// Produce a placement of `graph` on `cluster` given the source tuple
    /// rate (tuples/second entering each source operator).
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> &str;
}
