//! Zero-tree fast path for [`crate::wire::parse_request`].
//!
//! The generic wire parser builds a full `Value` tree: every object key,
//! number, and string becomes its own heap allocation before the typed
//! deserializers even run. For a request line the shape is known, so on
//! large graphs (an XLarge request line is a few hundred KB) tree
//! construction dominates the server's per-request latency — it is pure
//! allocator traffic on the single-threaded read loop.
//!
//! This module scans the line once, straight into the raw request
//! struct, allocating only the output vectors. It is *not* a second
//! protocol implementation: it accepts a strict subset of what the
//! generic path accepts, and anything outside that subset — a `cmd`
//! line, an escape in a captured string, a `null`, a duplicate or
//! missing key, any malformed byte — returns `None` and the caller
//! falls back to the generic parser, which remains the authority for
//! both error text and edge-case semantics. When `parse` succeeds the
//! result is identical to the generic path's (pinned by equivalence
//! tests in `crate::wire`).

use crate::graph::{Channel, Operator};
use crate::wire::RawRequest;

/// Parse one request line without building a `Value` tree. `None` means
/// "defer to the generic parser" — it is returned for malformed input
/// *and* for valid input this fast path does not cover.
pub(crate) fn parse(line: &str) -> Option<RawRequest> {
    let mut s = Scan {
        b: line.as_bytes(),
        p: 0,
    };
    s.ws();
    s.eat(b'{')?;

    let mut id: Option<String> = None;
    let mut ops: Option<Vec<Operator>> = None;
    let mut edges: Option<Vec<(u32, u32)>> = None;
    let mut channels: Option<Vec<Channel>> = None;
    let mut source_rate: Option<f64> = None;
    let mut devices: Option<usize> = None;
    let mut v: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut delta: Option<crate::delta::GraphDelta> = None;
    let mut prior_placement: Option<Vec<u32>> = None;

    s.ws();
    if s.eat(b'}').is_none() {
        loop {
            s.ws();
            let key = s.simple_string()?;
            s.ws();
            s.eat(b':')?;
            s.ws();
            match key {
                // Command lines are tiny; let the generic path decide
                // what a `cmd` field means.
                "cmd" => return None,
                "id" => set(&mut id, s.simple_string()?.to_string())?,
                "graph" => {
                    if ops.is_some() || edges.is_some() || channels.is_some() {
                        return None;
                    }
                    let g = s.graph()?;
                    ops = Some(g.0);
                    edges = Some(g.1);
                    channels = Some(g.2);
                }
                "source_rate" => set(&mut source_rate, s.f64()?)?,
                "devices" => set(&mut devices, s.int::<usize>()?)?,
                "v" => set(&mut v, s.int::<u64>()?)?,
                "deadline_ms" => set(&mut deadline_ms, s.int::<u64>()?)?,
                "delta" => set(&mut delta, s.delta()?)?,
                "prior_placement" => set(&mut prior_placement, s.array(Scan::int::<u32>)?)?,
                _ => s.skip_value(0)?,
            }
            s.ws();
            if s.eat(b',').is_some() {
                continue;
            }
            s.eat(b'}')?;
            break;
        }
    }
    s.ws();
    if s.p != s.b.len() {
        return None;
    }
    Some(RawRequest {
        id: id?,
        ops: ops?,
        edges: edges?,
        channels: channels?,
        source_rate,
        devices,
        v,
        deadline_ms,
        delta,
        prior_placement,
    })
}

/// Record a field value, bailing on a duplicate key (the generic path
/// takes the first occurrence; re-parsing there keeps that semantic).
fn set<T>(slot: &mut Option<T>, value: T) -> Option<()> {
    if slot.is_some() {
        return None;
    }
    *slot = Some(value);
    Some(())
}

/// Nesting cap for skipped unknown values. The request shape itself is
/// three levels deep; anything deeper inside an *unknown* field is not
/// worth recursing into on the fast path.
const MAX_SKIP_DEPTH: u32 = 64;

struct Scan<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Scan<'a> {
    fn ws(&mut self) {
        while matches!(self.b.get(self.p), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.p += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.p).copied()
    }

    fn eat(&mut self, byte: u8) -> Option<()> {
        if self.peek() == Some(byte) {
            self.p += 1;
            Some(())
        } else {
            None
        }
    }

    /// A string with no escapes, borrowed straight from the input.
    /// Escaped strings bail to the generic path.
    fn simple_string(&mut self) -> Option<&'a str> {
        self.eat(b'"')?;
        let start = self.p;
        loop {
            match self.b.get(self.p)? {
                b'"' => break,
                b'\\' => return None,
                _ => self.p += 1,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.p]).ok()?;
        self.p += 1;
        Some(text)
    }

    /// The maximal JSON-number-shaped span. The callers' `parse()` then
    /// applies exactly the accept-set the generic deserializers use.
    fn num_span(&mut self) -> Option<&'a str> {
        let start = self.p;
        if self.peek() == Some(b'-') {
            self.p += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.p += 1;
        }
        if self.peek() == Some(b'.') {
            self.p += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.p += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.p += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.p += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.p += 1;
            }
        }
        if self.p == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.p]).ok()
    }

    fn f64(&mut self) -> Option<f64> {
        self.num_span()?.parse().ok()
    }

    fn int<T: std::str::FromStr>(&mut self) -> Option<T> {
        self.num_span()?.parse().ok()
    }

    /// `[item, item, ...]` via a per-item sub-parser.
    fn array<T>(&mut self, item: impl Fn(&mut Self) -> Option<T>) -> Option<Vec<T>> {
        self.eat(b'[')?;
        self.ws();
        let mut out = Vec::new();
        if self.eat(b']').is_some() {
            return Some(out);
        }
        loop {
            self.ws();
            out.push(item(self)?);
            self.ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b']')?;
            return Some(out);
        }
    }

    /// A two-element array `[a, b]` (the wire shape of a tuple).
    fn pair<A, B>(
        &mut self,
        first: impl Fn(&mut Self) -> Option<A>,
        second: impl Fn(&mut Self) -> Option<B>,
    ) -> Option<(A, B)> {
        self.eat(b'[')?;
        self.ws();
        let a = first(self)?;
        self.ws();
        self.eat(b',')?;
        self.ws();
        let b = second(self)?;
        self.ws();
        self.eat(b']')?;
        Some((a, b))
    }

    fn edge(&mut self) -> Option<(u32, u32)> {
        self.pair(Scan::int::<u32>, Scan::int::<u32>)
    }

    /// An object body: calls `field` per key (returning whether the key
    /// was consumed), skipping unknown keys, bailing on any error.
    fn object(&mut self, mut field: impl FnMut(&mut Self, &str) -> Option<bool>) -> Option<()> {
        self.eat(b'{')?;
        self.ws();
        if self.eat(b'}').is_some() {
            return Some(());
        }
        loop {
            self.ws();
            let key = self.simple_string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            if !field(self, key)? {
                self.skip_value(0)?;
            }
            self.ws();
            if self.eat(b',').is_some() {
                continue;
            }
            self.eat(b'}')?;
            return Some(());
        }
    }

    fn op(&mut self) -> Option<Operator> {
        let mut ipt: Option<f64> = None;
        self.object(|s, key| match key {
            "ipt" => {
                set(&mut ipt, s.f64()?)?;
                Some(true)
            }
            _ => Some(false),
        })?;
        Some(Operator { ipt: ipt? })
    }

    fn channel(&mut self) -> Option<Channel> {
        let mut payload: Option<f64> = None;
        let mut selectivity: Option<f64> = None;
        self.object(|s, key| match key {
            "payload" => {
                set(&mut payload, s.f64()?)?;
                Some(true)
            }
            "selectivity" => {
                set(&mut selectivity, s.f64()?)?;
                Some(true)
            }
            _ => Some(false),
        })?;
        Some(Channel {
            payload: payload?,
            selectivity: selectivity?,
        })
    }

    /// The `graph` object: `{"ops":[...],"edges":[...],"channels":[...]}`.
    #[allow(clippy::type_complexity)]
    fn graph(&mut self) -> Option<(Vec<Operator>, Vec<(u32, u32)>, Vec<Channel>)> {
        let mut ops: Option<Vec<Operator>> = None;
        let mut edges: Option<Vec<(u32, u32)>> = None;
        let mut channels: Option<Vec<Channel>> = None;
        self.object(|s, key| match key {
            "ops" => {
                set(&mut ops, s.array(Scan::op)?)?;
                Some(true)
            }
            "edges" => {
                set(&mut edges, s.array(Scan::edge)?)?;
                Some(true)
            }
            "channels" => {
                set(&mut channels, s.array(Scan::channel)?)?;
                Some(true)
            }
            _ => Some(false),
        })?;
        Some((ops?, edges?, channels?))
    }

    fn delta(&mut self) -> Option<crate::delta::GraphDelta> {
        let mut d = crate::delta::GraphDelta::default();
        let mut seen = [false; 10];
        let mut once = |slot: usize| -> Option<()> {
            if seen[slot] {
                return None;
            }
            seen[slot] = true;
            Some(())
        };
        self.object(|s, key| {
            match key {
                "remove_nodes" => {
                    once(0)?;
                    d.remove_nodes = s.array(Scan::int::<u32>)?;
                }
                "add_nodes" => {
                    once(1)?;
                    d.add_nodes = s.array(Scan::op)?;
                }
                "remove_edges" => {
                    once(2)?;
                    d.remove_edges = s.array(Scan::edge)?;
                }
                "add_edges" => {
                    once(3)?;
                    d.add_edges = s.array(Scan::edge)?;
                }
                "add_channels" => {
                    once(4)?;
                    d.add_channels = s.array(Scan::channel)?;
                }
                "set_ipt" => {
                    once(5)?;
                    d.set_ipt = s.array(|s| s.pair(Scan::int::<u32>, Scan::f64))?;
                }
                "set_channel_edges" => {
                    once(6)?;
                    d.set_channel_edges = s.array(Scan::edge)?;
                }
                "set_channels" => {
                    once(7)?;
                    d.set_channels = s.array(Scan::channel)?;
                }
                "devices" => {
                    once(8)?;
                    d.devices = Some(s.int::<usize>()?);
                }
                "source_rate" => {
                    once(9)?;
                    d.source_rate = Some(s.f64()?);
                }
                _ => return Some(false),
            }
            Some(true)
        })?;
        Some(d)
    }

    /// Skip one well-formed JSON value of any shape (unknown fields).
    fn skip_value(&mut self, depth: u32) -> Option<()> {
        if depth > MAX_SKIP_DEPTH {
            return None;
        }
        match self.peek()? {
            b'{' => {
                self.p += 1;
                self.ws();
                if self.eat(b'}').is_some() {
                    return Some(());
                }
                loop {
                    self.ws();
                    self.skip_string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    self.skip_value(depth + 1)?;
                    self.ws();
                    if self.eat(b',').is_some() {
                        continue;
                    }
                    return self.eat(b'}');
                }
            }
            b'[' => {
                self.p += 1;
                self.ws();
                if self.eat(b']').is_some() {
                    return Some(());
                }
                loop {
                    self.ws();
                    self.skip_value(depth + 1)?;
                    self.ws();
                    if self.eat(b',').is_some() {
                        continue;
                    }
                    return self.eat(b']');
                }
            }
            b'"' => self.skip_string(),
            b't' => self.literal(b"true"),
            b'f' => self.literal(b"false"),
            b'n' => self.literal(b"null"),
            b'-' | b'0'..=b'9' => self.num_span().map(|_| ()),
            _ => None,
        }
    }

    /// Skip a string, escapes included, without decoding it. After a
    /// backslash the next byte is consumed blindly — for `\uXXXX` the
    /// hex digits contain no quote or backslash, so the scan resumes
    /// correctly.
    fn skip_string(&mut self) -> Option<()> {
        self.eat(b'"')?;
        loop {
            match self.b.get(self.p)? {
                b'"' => {
                    self.p += 1;
                    return Some(());
                }
                b'\\' => self.p += 2,
                _ => self.p += 1,
            }
        }
    }

    fn literal(&mut self, text: &[u8]) -> Option<()> {
        if self.b[self.p..].starts_with(text) {
            self.p += text.len();
            Some(())
        } else {
            None
        }
    }
}
