//! The undirected weighted view of a stream graph used by partitioners.
//!
//! A partitioner balances *CPU load* (node weight) while minimising *traffic
//! cut* (edge weight). Both are rate-dependent, so the conversion from a
//! [`StreamGraph`] takes the source rate. Anti-parallel directed edges are
//! merged into one undirected edge with summed traffic.

use crate::graph::StreamGraph;
use crate::rates::TupleRates;
use serde::{Deserialize, Serialize};

/// An undirected weighted graph (adjacency-list form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedGraph {
    /// Node weights (CPU demand, instructions/second).
    pub node_weight: Vec<f64>,
    /// Unique undirected edges as `(u, v)` with `u < v`.
    pub edges: Vec<(u32, u32)>,
    /// Edge weights (traffic, bytes/second), parallel to `edges`.
    pub edge_weight: Vec<f64>,
    /// Adjacency: for each node, `(neighbor, edge index)` pairs.
    adj: Vec<Vec<(u32, u32)>>,
}

impl WeightedGraph {
    /// Build from explicit parts; merges duplicate undirected edges by
    /// summing weights and drops self-loops (they never affect a cut).
    pub fn new(
        node_weight: Vec<f64>,
        raw_edges: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let n = node_weight.len();
        let mut merged: std::collections::HashMap<(u32, u32), f64> =
            std::collections::HashMap::new();
        for (a, b, w) in raw_edges {
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            *merged.entry(key).or_insert(0.0) += w;
        }
        let mut edges: Vec<(u32, u32)> = merged.keys().copied().collect();
        edges.sort_unstable();
        let edge_weight: Vec<f64> = edges.iter().map(|k| merged[k]).collect();
        let mut adj = vec![Vec::new(); n];
        for (i, &(a, b)) in edges.iter().enumerate() {
            adj[a as usize].push((b, i as u32));
            adj[b as usize].push((a, i as u32));
        }
        Self {
            node_weight,
            edges,
            edge_weight,
            adj,
        }
    }

    /// Convert a stream graph at a given source rate: node weight = CPU
    /// demand `R_v * ipt_v`, edge weight = traffic `R_e * payload_e`.
    pub fn from_stream(graph: &StreamGraph, source_rate: f64) -> Self {
        let rates = TupleRates::compute(graph, source_rate);
        Self::from_stream_with_rates(graph, &rates)
    }

    /// Same as [`Self::from_stream`] but reusing precomputed rates.
    pub fn from_stream_with_rates(graph: &StreamGraph, rates: &TupleRates) -> Self {
        let node_weight = rates.cpu_demand(graph);
        let traffic = rates.edge_traffic(graph);
        let raw = graph
            .edge_list()
            .iter()
            .zip(traffic)
            .map(|(&(s, d), w)| (s, d, w));
        Self::new(node_weight, raw)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_weight.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `(neighbor, edge index)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[(u32, u32)] {
        &self.adj[v as usize]
    }

    /// Total node weight.
    pub fn total_node_weight(&self) -> f64 {
        self.node_weight.iter().sum()
    }

    /// Total edge weight.
    pub fn total_edge_weight(&self) -> f64 {
        self.edge_weight.iter().sum()
    }

    /// Weight of the cut induced by `part` (sum of weights of edges whose
    /// endpoints have different labels).
    pub fn cut_weight(&self, part: &[u32]) -> f64 {
        self.edges
            .iter()
            .zip(&self.edge_weight)
            .filter(|(&(a, b), _)| part[a as usize] != part[b as usize])
            .map(|(_, &w)| w)
            .sum()
    }

    /// Per-part node-weight sums for a labelling into `k` parts.
    pub fn part_weights(&self, part: &[u32], k: usize) -> Vec<f64> {
        let mut w = vec![0.0; k];
        for (v, &p) in part.iter().enumerate() {
            w[p as usize] += self.node_weight[v];
        }
        w
    }

    /// Contract nodes according to `node_map` (node -> coarse id, dense in
    /// `0..k`). Coarse node weight is the sum of member weights; coarse edges
    /// aggregate inter-group weights; intra-group edges disappear.
    pub fn contract(&self, node_map: &[u32], k: usize) -> WeightedGraph {
        assert_eq!(node_map.len(), self.num_nodes());
        let mut node_weight = vec![0.0; k];
        for (v, &c) in node_map.iter().enumerate() {
            node_weight[c as usize] += self.node_weight[v];
        }
        let raw = self
            .edges
            .iter()
            .zip(&self.edge_weight)
            .map(|(&(a, b), &w)| (node_map[a as usize], node_map[b as usize], w));
        WeightedGraph::new(node_weight, raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    #[test]
    fn merges_duplicate_and_antiparallel_edges() {
        let g = WeightedGraph::new(vec![1.0; 3], vec![(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges[0], (0, 1));
        assert!((g.edge_weight[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn drops_self_loops() {
        let g = WeightedGraph::new(vec![1.0; 2], vec![(0, 0, 9.0), (0, 1, 1.0)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn cut_weight_and_part_weights() {
        let g = WeightedGraph::new(vec![1.0, 2.0, 3.0], vec![(0, 1, 5.0), (1, 2, 7.0)]);
        let part = [0u32, 0, 1];
        assert!((g.cut_weight(&part) - 7.0).abs() < 1e-12);
        assert_eq!(g.part_weights(&part, 2), vec![3.0, 3.0]);
    }

    #[test]
    fn from_stream_uses_rates() {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(2.0));
        let c = b.add_node(Operator::new(3.0));
        b.add_edge(a, c, Channel::new(10.0)).unwrap();
        let g = b.finish().unwrap();
        let w = WeightedGraph::from_stream(&g, 100.0);
        assert_eq!(w.node_weight, vec![200.0, 300.0]);
        assert_eq!(w.edge_weight, vec![1000.0]);
    }

    #[test]
    fn contract_aggregates() {
        let g = WeightedGraph::new(
            vec![1.0, 2.0, 4.0, 8.0],
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (0, 3, 8.0)],
        );
        // Groups {0,1} and {2,3}
        let c = g.contract(&[0, 0, 1, 1], 2);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.node_weight, vec![3.0, 12.0]);
        assert_eq!(c.num_edges(), 1);
        assert!((c.edge_weight[0] - 10.0).abs() < 1e-12); // 2.0 + 8.0 cross edges
    }
}
