//! Heterogeneous device clusters — the paper's stated future work
//! ("we plan to extend the proposed model to heterogeneous devices").
//!
//! A [`HeteroClusterSpec`] gives every device its own MIPS capacity. The
//! analytic simulator (`spg-sim::hetero`) and the partitioner's
//! target-weighted mode consume it; the coarsening model is
//! capacity-agnostic (it predicts *what to merge*, not *where to place*),
//! so the same trained model works unchanged — exactly the
//! generalizability argument of §IV's remark.

use serde::{Deserialize, Serialize};

/// A cluster whose devices differ in compute capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroClusterSpec {
    /// Per-device capacity in MIPS.
    pub mips: Vec<f64>,
    /// Link bandwidth between any two devices, in Mbps (kept uniform; NIC
    /// heterogeneity composes the same way if needed).
    pub link_mbps: f64,
}

impl HeteroClusterSpec {
    /// Build from per-device MIPS.
    pub fn new(mips: Vec<f64>, link_mbps: f64) -> Self {
        assert!(!mips.is_empty(), "cluster must have at least one device");
        assert!(mips.iter().all(|&m| m > 0.0) && link_mbps > 0.0);
        Self { mips, link_mbps }
    }

    /// A homogeneous cluster expressed in the heterogeneous form.
    pub fn homogeneous(cluster: &crate::ClusterSpec) -> Self {
        Self::new(vec![cluster.mips; cluster.devices], cluster.link_mbps)
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.mips.len()
    }

    /// Capacity of device `d` in instructions/second.
    pub fn instr_per_sec(&self, d: usize) -> f64 {
        self.mips[d] * 1e6
    }

    /// Total capacity in instructions/second.
    pub fn total_instr_per_sec(&self) -> f64 {
        self.mips.iter().sum::<f64>() * 1e6
    }

    /// Link bandwidth in bytes/second.
    pub fn link_bytes_per_sec(&self) -> f64 {
        self.link_mbps * 1e6 / 8.0
    }

    /// Capacity share of each device (sums to 1) — the partitioner's
    /// target weights.
    pub fn capacity_shares(&self) -> Vec<f64> {
        let total: f64 = self.mips.iter().sum();
        self.mips.iter().map(|m| m / total).collect()
    }

    /// The homogeneous [`crate::ClusterSpec`] with the same *total*
    /// capacity (used to reuse homogeneous-trained models on
    /// heterogeneous clusters).
    pub fn equivalent_homogeneous(&self) -> crate::ClusterSpec {
        crate::ClusterSpec::new(
            self.devices(),
            self.mips.iter().sum::<f64>() / self.devices() as f64,
            self.link_mbps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    #[test]
    fn shares_sum_to_one() {
        let h = HeteroClusterSpec::new(vec![1000.0, 3000.0], 1000.0);
        let s = h.capacity_shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((s[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_roundtrip() {
        let c = ClusterSpec::paper_medium(4);
        let h = HeteroClusterSpec::homogeneous(&c);
        assert_eq!(h.devices(), 4);
        assert_eq!(h.equivalent_homogeneous(), c);
    }

    #[test]
    fn totals() {
        let h = HeteroClusterSpec::new(vec![1000.0, 2000.0], 800.0);
        assert!((h.total_instr_per_sec() - 3e9).abs() < 1.0);
        assert!((h.link_bytes_per_sec() - 1e8).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_cluster_panics() {
        HeteroClusterSpec::new(vec![], 100.0);
    }
}
