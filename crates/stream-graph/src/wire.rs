//! JSONL wire format of the allocation service (`spg serve`).
//!
//! The protocol is line-oriented JSON over TCP: one request per line,
//! one response per line, responses carry the request's `id` so clients
//! may pipeline. A request's graph is sent as raw parts only (`ops`,
//! `edges`, `channels`) — derived structure is never trusted from the
//! wire; [`parse_request`] rebuilds and validates it through
//! [`crate::serialize::validate_graph`], the same funnel dataset files
//! go through.
//!
//! ```text
//! → {"id":"r1","graph":{"ops":[{"ipt":100}, ...],"edges":[[0,1], ...],
//!    "channels":[{"payload":8,"selectivity":1}, ...]},
//!    "source_rate":10000,"devices":8}
//! ← {"id":"r1","placement":[0,2,1, ...],"relative_throughput":0.87,
//!    "cached":false}
//! → {"cmd":"shutdown"}
//! ```
//!
//! `source_rate` and `devices` are optional; a request that omits them
//! inherits the server's configured defaults. Every failure is a named
//! [`WireError`] rendered as an [`ErrorResponse`] line — a malformed
//! request never drops the connection.

use crate::graph::{Channel, Operator, StreamGraph};
use crate::serialize::validate_graph;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Named protocol error. The variant's [`WireError::code`] is what goes
/// over the wire in [`ErrorResponse::error`]; the payload is the
/// human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The line is not valid JSON, or parsed but is not a valid request.
    BadRequest(String),
    /// The request parsed but its graph failed structural or numeric
    /// validation.
    InvalidGraph(String),
    /// The request waited longer than the server's per-request deadline.
    Timeout(String),
    /// The server's bounded request queue is full (backpressure).
    Overloaded(String),
    /// The server is draining after a shutdown request; no new work is
    /// accepted.
    Draining,
    /// Unexpected server-side failure (e.g. a caught worker panic).
    Internal(String),
}

impl WireError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::BadRequest(_) => "bad-request",
            WireError::InvalidGraph(_) => "invalid-graph",
            WireError::Timeout(_) => "timeout",
            WireError::Overloaded(_) => "overloaded",
            WireError::Draining => "draining",
            WireError::Internal(_) => "internal",
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            WireError::BadRequest(d)
            | WireError::InvalidGraph(d)
            | WireError::Timeout(d)
            | WireError::Overloaded(d)
            | WireError::Internal(d) => d.clone(),
            WireError::Draining => "server is draining; not accepting new requests".to_string(),
        }
    }

    /// Render as the error-response line for request `id` (if known).
    pub fn response(&self, id: Option<String>) -> ErrorResponse {
        ErrorResponse {
            id,
            error: self.code().to_string(),
            detail: self.detail(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for WireError {}

/// A parsed request line.
// The enum is destructured immediately after parsing, so the size gap
// between its variants never lives on a hot path or in a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// Allocate one graph.
    Alloc(AllocRequest),
    /// Stop accepting work, drain in-flight requests, exit.
    Shutdown,
}

/// An allocation request with its graph already validated.
#[derive(Debug, Clone)]
pub struct AllocRequest {
    /// Client-chosen request id, echoed back in the response.
    pub id: String,
    /// The validated stream graph to place.
    pub graph: StreamGraph,
    /// Source tuple rate override (tuples/s); `None` inherits the
    /// server's configured rate.
    pub source_rate: Option<f64>,
    /// Device-count override; `None` inherits the server's cluster.
    pub devices: Option<usize>,
}

impl AllocRequest {
    /// Render as one JSONL request line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

impl Serialize for AllocRequest {
    fn serialize(&self) -> Value {
        let graph = Value::Object(vec![
            ("ops".to_string(), self.graph.ops().serialize()),
            ("edges".to_string(), self.graph.edge_list().serialize()),
            ("channels".to_string(), self.graph.channels().serialize()),
        ]);
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("graph".to_string(), graph),
        ];
        if let Some(sr) = self.source_rate {
            fields.push(("source_rate".to_string(), sr.serialize()));
        }
        if let Some(d) = self.devices {
            fields.push(("devices".to_string(), d.serialize()));
        }
        Value::Object(fields)
    }
}

/// The shutdown command line (no trailing newline).
pub fn shutdown_line() -> &'static str {
    r#"{"cmd":"shutdown"}"#
}

/// Raw request shape straight off the wire: graph parts, nothing
/// validated yet. The vendored serde derive has no optional-field
/// support, so this deserializer is hand-rolled over [`Value`].
struct RawRequest {
    id: String,
    ops: Vec<Operator>,
    edges: Vec<(u32, u32)>,
    channels: Vec<Channel>,
    source_rate: Option<f64>,
    devices: Option<usize>,
}

enum RawLine {
    Alloc(RawRequest),
    Shutdown,
}

fn opt_field<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, serde::Error> {
    match v.field(name) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(x) => T::deserialize(x).map(Some),
    }
}

impl Deserialize for RawLine {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        if let Ok(cmd) = v.field("cmd") {
            let cmd = String::deserialize(cmd)?;
            return match cmd.as_str() {
                "shutdown" => Ok(RawLine::Shutdown),
                other => Err(serde::Error(format!("unknown cmd `{other}`"))),
            };
        }
        let graph = v.field("graph")?;
        Ok(RawLine::Alloc(RawRequest {
            id: String::deserialize(v.field("id")?)?,
            ops: Vec::<Operator>::deserialize(graph.field("ops")?)?,
            edges: Vec::<(u32, u32)>::deserialize(graph.field("edges")?)?,
            channels: Vec::<Channel>::deserialize(graph.field("channels")?)?,
            source_rate: opt_field(v, "source_rate")?,
            devices: opt_field(v, "devices")?,
        }))
    }
}

/// Parse and validate one request line.
///
/// Malformed JSON or a bad request shape is [`WireError::BadRequest`];
/// a graph that fails structural or numeric validation is
/// [`WireError::InvalidGraph`]. Never panics on untrusted input.
pub fn parse_request(line: &str) -> Result<WireRequest, WireError> {
    let raw: RawLine =
        serde_json::from_str(line).map_err(|e| WireError::BadRequest(e.to_string()))?;
    let raw = match raw {
        RawLine::Shutdown => return Ok(WireRequest::Shutdown),
        RawLine::Alloc(r) => r,
    };
    if let Some(sr) = raw.source_rate {
        if !(sr.is_finite() && sr > 0.0) {
            return Err(WireError::BadRequest(format!(
                "source_rate must be finite positive, got {sr}"
            )));
        }
    }
    if raw.devices == Some(0) {
        return Err(WireError::BadRequest(
            "devices must be at least 1".to_string(),
        ));
    }
    // Structural validation happens in the constructor; the follow-up
    // `validate_graph` adds the numeric checks shared with dataset
    // loading (and is cheap next to an inference pass).
    let graph = StreamGraph::from_parts(raw.ops, raw.edges, raw.channels)
        .map_err(|e| WireError::InvalidGraph(e.to_string()))?;
    let graph = validate_graph(&graph).map_err(|e| WireError::InvalidGraph(e.to_string()))?;
    Ok(WireRequest::Alloc(AllocRequest {
        id: raw.id,
        graph,
        source_rate: raw.source_rate,
        devices: raw.devices,
    }))
}

/// Successful allocation response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocResponse {
    /// Echo of the request id.
    pub id: String,
    /// Device index per operator, in node order.
    pub placement: Vec<u32>,
    /// Analytic relative throughput of the placement (`α`).
    pub relative_throughput: f64,
    /// True if the placement came from the server's LRU cache.
    pub cached: bool,
}

impl AllocResponse {
    /// Render as one JSONL response line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

/// Error response; `id` is `null` when the request was too malformed to
/// carry one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id, if it could be parsed.
    pub id: Option<String>,
    /// Machine-readable code ([`WireError::code`]).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorResponse {
    /// Render as one JSONL response line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

/// A parsed response line: success or named error.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Successful allocation.
    Ok(AllocResponse),
    /// Named protocol error.
    Err(ErrorResponse),
}

impl WireResponse {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        serde_json::from_str(line).map_err(|e| WireError::BadRequest(e.to_string()))
    }

    /// The response's request id, if present.
    pub fn id(&self) -> Option<&str> {
        match self {
            WireResponse::Ok(r) => Some(&r.id),
            WireResponse::Err(e) => e.id.as_deref(),
        }
    }
}

impl Deserialize for WireResponse {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        if v.field("error").is_ok() {
            ErrorResponse::deserialize(v).map(WireResponse::Err)
        } else {
            AllocResponse::deserialize(v).map(WireResponse::Ok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StreamGraphBuilder;

    fn tiny() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(8.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn request_roundtrips_with_overrides() {
        let req = AllocRequest {
            id: "r1".to_string(),
            graph: tiny(),
            source_rate: Some(1e4),
            devices: Some(8),
        };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => {
                assert_eq!(back.id, "r1");
                assert_eq!(back.graph, req.graph);
                assert_eq!(back.source_rate, Some(1e4));
                assert_eq!(back.devices, Some(8));
            }
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn omitted_overrides_parse_as_none() {
        let req = AllocRequest {
            id: "r2".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
        };
        let line = req.to_line();
        assert!(!line.contains("source_rate"));
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => {
                assert_eq!(back.source_rate, None);
                assert_eq!(back.devices, None);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_line_parses() {
        assert!(matches!(
            parse_request(shutdown_line()),
            Ok(WireRequest::Shutdown)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"reboot"}"#),
            Err(WireError::BadRequest(_))
        ));
    }

    #[test]
    fn garbage_is_bad_request_not_panic() {
        for line in ["{not json", "", "42", r#"{"id":"x"}"#] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad-request", "line {line:?} gave {err}");
        }
    }

    #[test]
    fn structurally_broken_graph_is_invalid_graph() {
        // Dangling endpoint: edge points at node 9 of a 2-node graph.
        let line = AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
        }
        .to_line()
        .replacen("[[0,1]]", "[[0,9]]", 1);
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code(), "invalid-graph", "{err}");

        // Numerically broken: negative operator cost.
        let line = AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
        }
        .to_line()
        .replacen("\"ipt\":100", "\"ipt\":-100", 1);
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code(), "invalid-graph", "{err}");
    }

    #[test]
    fn bad_overrides_are_rejected() {
        let mk = |sr: Option<f64>, dev: Option<usize>| AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: sr,
            devices: dev,
        };
        assert!(matches!(
            parse_request(&mk(Some(-1.0), None).to_line()),
            Err(WireError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(&mk(None, Some(0)).to_line()),
            Err(WireError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_roundtrip() {
        let ok = AllocResponse {
            id: "r1".to_string(),
            placement: vec![0, 2, 1],
            relative_throughput: 0.875,
            cached: true,
        };
        assert_eq!(
            WireResponse::parse(&ok.to_line()).unwrap(),
            WireResponse::Ok(ok.clone())
        );

        let err = WireError::Timeout("waited 5000 ms".to_string()).response(Some("r2".to_string()));
        let back = WireResponse::parse(&err.to_line()).unwrap();
        assert_eq!(back, WireResponse::Err(err));
        assert_eq!(back.id(), Some("r2"));

        // An id-less error (unparseable request) still roundtrips.
        let anon = WireError::BadRequest("not json".to_string()).response(None);
        let back = WireResponse::parse(&anon.to_line()).unwrap();
        assert_eq!(back.id(), None);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(WireError::Draining.code(), "draining");
        assert_eq!(WireError::Overloaded(String::new()).code(), "overloaded");
        assert_eq!(WireError::Timeout(String::new()).code(), "timeout");
        assert_eq!(WireError::Internal(String::new()).code(), "internal");
    }
}
