//! JSONL wire format of the allocation service (`spg serve`).
//!
//! The protocol is line-oriented JSON over TCP: one request per line,
//! one response per line, responses carry the request's `id` so clients
//! may pipeline. A request's graph is sent as raw parts only (`ops`,
//! `edges`, `channels`) — derived structure is never trusted from the
//! wire; [`parse_request`] rebuilds and validates it through
//! [`crate::serialize::validate_graph`], the same funnel dataset files
//! go through.
//!
//! ```text
//! → {"id":"r1","graph":{"ops":[{"ipt":100}, ...],"edges":[[0,1], ...],
//!    "channels":[{"payload":8,"selectivity":1}, ...]},
//!    "source_rate":10000,"devices":8}
//! ← {"id":"r1","placement":[0,2,1, ...],"relative_throughput":0.87,
//!    "cached":false}
//! → {"cmd":"shutdown"}
//! ```
//!
//! `source_rate` and `devices` are optional; a request that omits them
//! inherits the server's configured defaults. Every failure is a named
//! [`WireError`] rendered as an [`ErrorResponse`] line — a malformed
//! request never drops the connection.
//!
//! ## Versioning
//!
//! Requests may carry an optional `"v"` field selecting the protocol
//! version. An absent `v` means **v1** and the response bytes are
//! exactly the pre-versioning format (no new fields appear on the
//! default path). `"v":2` opts into the v2 response shape, which echoes
//! `"v":2` and adds a `"shard"` field naming the replica that served
//! the request (for debugging routing). A version this server does not
//! speak is refused with the named `unsupported-version` error. Unknown
//! request fields are ignored in every version, so newer clients can
//! add fields without breaking older servers (forward compatibility).
//!
//! ## Incremental re-allocation (`realloc`, v2 only)
//!
//! A request line carrying a `"delta"` field is a [`ReallocRequest`]:
//! the prior graph, the prior placement, and a [`GraphDelta`] naming
//! the drift since (see `crate::delta`). The server projects the prior
//! placement onto the mutated graph and warm-starts refinement, falling
//! back to the full pipeline above a churn threshold; the response is a
//! normal [`AllocResponse`] whose optional `"realloc"` field reports
//! which path ran (`"warm"` or `"full"` — absent for an empty delta,
//! whose response reproduces the prior placement exactly, and on every
//! plain alloc). `realloc` requires `"v":2`; a v1 realloc is refused as
//! `bad-request`.

use crate::delta::GraphDelta;
use crate::graph::{Channel, Operator, StreamGraph};
use crate::serialize::validate_graph;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Named protocol error. The variant's [`WireError::code`] is what goes
/// over the wire in [`ErrorResponse::error`]; the payload is the
/// human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The line is not valid JSON, or parsed but is not a valid request.
    BadRequest(String),
    /// The request parsed but its graph failed structural or numeric
    /// validation.
    InvalidGraph(String),
    /// The request waited longer than the server's per-request deadline.
    Timeout(String),
    /// The request's own `deadline_ms` budget had already lapsed when it
    /// reached a replica; it was shed before any inference ran.
    DeadlineExceeded(String),
    /// The server's bounded request queue is full (backpressure).
    Overloaded(String),
    /// The server is draining after a shutdown request; no new work is
    /// accepted.
    Draining,
    /// Unexpected server-side failure (e.g. a caught worker panic).
    Internal(String),
    /// The request asked for a protocol version this server does not
    /// speak.
    UnsupportedVersion(String),
}

impl WireError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::BadRequest(_) => "bad-request",
            WireError::InvalidGraph(_) => "invalid-graph",
            WireError::Timeout(_) => "timeout",
            WireError::DeadlineExceeded(_) => "deadline-exceeded",
            WireError::Overloaded(_) => "overloaded",
            WireError::Draining => "draining",
            WireError::Internal(_) => "internal",
            WireError::UnsupportedVersion(_) => "unsupported-version",
        }
    }

    /// Every stable error code, in declaration order. The single source
    /// of truth for the wire names — `spg-serve`'s `ServeError` and the
    /// name-pinning tests both delegate here.
    pub const CODES: [&'static str; 8] = [
        "bad-request",
        "invalid-graph",
        "timeout",
        "deadline-exceeded",
        "overloaded",
        "draining",
        "internal",
        "unsupported-version",
    ];

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            WireError::BadRequest(d)
            | WireError::InvalidGraph(d)
            | WireError::Timeout(d)
            | WireError::DeadlineExceeded(d)
            | WireError::Overloaded(d)
            | WireError::Internal(d)
            | WireError::UnsupportedVersion(d) => d.clone(),
            WireError::Draining => "server is draining; not accepting new requests".to_string(),
        }
    }

    /// Render as the error-response line for request `id` (if known).
    pub fn response(&self, id: Option<String>) -> ErrorResponse {
        ErrorResponse {
            id,
            error: self.code().to_string(),
            detail: self.detail(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for WireError {}

/// A parsed request line.
// The enum is destructured immediately after parsing, so the size gap
// between its variants never lives on a hot path or in a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Allocate one graph.
    Alloc(AllocRequest),
    /// Incrementally re-allocate a drifted graph from a prior placement.
    Realloc(ReallocRequest),
    /// Stop accepting work, drain in-flight requests, exit.
    Shutdown,
}

/// An allocation request with its graph already validated.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRequest {
    /// Client-chosen request id, echoed back in the response.
    pub id: String,
    /// The validated stream graph to place.
    pub graph: StreamGraph,
    /// Source tuple rate override (tuples/s); `None` inherits the
    /// server's configured rate.
    pub source_rate: Option<f64>,
    /// Device-count override; `None` inherits the server's cluster.
    pub devices: Option<usize>,
    /// Requested protocol version; `None` means v1 (the pre-versioning
    /// wire bytes, unchanged).
    pub v: Option<u64>,
    /// Usefulness budget in milliseconds, measured from arrival (v2
    /// only). A request still queued past this budget is shed with the
    /// named `deadline-exceeded` error instead of burning an inference
    /// pass on an answer the client has stopped waiting for.
    pub deadline_ms: Option<u64>,
}

/// Protocol versions this implementation speaks.
pub const SUPPORTED_VERSIONS: [u64; 2] = [1, 2];

impl AllocRequest {
    /// The effective protocol version (absent `v` ⇒ 1).
    pub fn version(&self) -> u64 {
        self.v.unwrap_or(1)
    }

    /// Render as one JSONL request line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

impl Serialize for AllocRequest {
    fn serialize(&self) -> Value {
        let graph = Value::Object(vec![
            ("ops".to_string(), self.graph.ops().serialize()),
            ("edges".to_string(), self.graph.edge_list().serialize()),
            ("channels".to_string(), self.graph.channels().serialize()),
        ]);
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("graph".to_string(), graph),
        ];
        if let Some(sr) = self.source_rate {
            fields.push(("source_rate".to_string(), sr.serialize()));
        }
        if let Some(d) = self.devices {
            fields.push(("devices".to_string(), d.serialize()));
        }
        if let Some(v) = self.v {
            fields.push(("v".to_string(), v.serialize()));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), d.serialize()));
        }
        Value::Object(fields)
    }
}

/// An incremental re-allocation request (v2 only): the prior graph and
/// placement, plus the [`GraphDelta`] describing the drift since. The
/// graph here is the *prior* one — the server applies the delta itself
/// so both sides agree on exactly which mutation was placed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReallocRequest {
    /// Client-chosen request id, echoed back in the response.
    pub id: String,
    /// The validated prior stream graph (pre-delta).
    pub graph: StreamGraph,
    /// The placement the prior response assigned, one device per node.
    pub prior_placement: Vec<u32>,
    /// The drift to apply before re-allocating.
    pub delta: GraphDelta,
    /// Base source-rate override (the prior request's); the delta's
    /// `source_rate` further overrides this.
    pub source_rate: Option<f64>,
    /// Base device-count override; the delta's `devices` further
    /// overrides this.
    pub devices: Option<usize>,
    /// Requested protocol version; must resolve to 2.
    pub v: Option<u64>,
    /// Usefulness budget in milliseconds (see [`AllocRequest::deadline_ms`]).
    pub deadline_ms: Option<u64>,
}

impl ReallocRequest {
    /// The effective protocol version (absent `v` ⇒ 1, which
    /// [`parse_request`] refuses for realloc).
    pub fn version(&self) -> u64 {
        self.v.unwrap_or(1)
    }

    /// Render as one JSONL request line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

impl Serialize for ReallocRequest {
    fn serialize(&self) -> Value {
        let graph = Value::Object(vec![
            ("ops".to_string(), self.graph.ops().serialize()),
            ("edges".to_string(), self.graph.edge_list().serialize()),
            ("channels".to_string(), self.graph.channels().serialize()),
        ]);
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("graph".to_string(), graph),
            (
                "prior_placement".to_string(),
                self.prior_placement.serialize(),
            ),
            ("delta".to_string(), self.delta.serialize()),
        ];
        if let Some(sr) = self.source_rate {
            fields.push(("source_rate".to_string(), sr.serialize()));
        }
        if let Some(d) = self.devices {
            fields.push(("devices".to_string(), d.serialize()));
        }
        if let Some(v) = self.v {
            fields.push(("v".to_string(), v.serialize()));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), d.serialize()));
        }
        Value::Object(fields)
    }
}

/// The shutdown command line (no trailing newline).
pub fn shutdown_line() -> &'static str {
    r#"{"cmd":"shutdown"}"#
}

/// Raw request shape straight off the wire: graph parts, nothing
/// validated yet. The vendored serde derive has no optional-field
/// support, so this deserializer is hand-rolled over [`Value`].
/// `crate::wire_fast` fills the same struct without building a `Value`
/// tree; both feed the one validation funnel below.
pub(crate) struct RawRequest {
    pub(crate) id: String,
    pub(crate) ops: Vec<Operator>,
    pub(crate) edges: Vec<(u32, u32)>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) source_rate: Option<f64>,
    pub(crate) devices: Option<usize>,
    pub(crate) v: Option<u64>,
    pub(crate) deadline_ms: Option<u64>,
    /// Present (with `prior_placement`) iff this line is a realloc.
    pub(crate) delta: Option<GraphDelta>,
    pub(crate) prior_placement: Option<Vec<u32>>,
}

// Transient per-line parse artifact; boxing the payload would add an
// allocation to every request for no retained-memory benefit.
#[allow(clippy::large_enum_variant)]
enum RawLine {
    Alloc(RawRequest),
    Shutdown,
}

fn opt_field<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, serde::Error> {
    match v.field(name) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(x) => T::deserialize(x).map(Some),
    }
}

impl Deserialize for RawLine {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        if let Ok(cmd) = v.field("cmd") {
            let cmd = String::deserialize(cmd)?;
            return match cmd.as_str() {
                "shutdown" => Ok(RawLine::Shutdown),
                other => Err(serde::Error(format!("unknown cmd `{other}`"))),
            };
        }
        let graph = v.field("graph")?;
        Ok(RawLine::Alloc(RawRequest {
            id: String::deserialize(v.field("id")?)?,
            ops: Vec::<Operator>::deserialize(graph.field("ops")?)?,
            edges: Vec::<(u32, u32)>::deserialize(graph.field("edges")?)?,
            channels: Vec::<Channel>::deserialize(graph.field("channels")?)?,
            source_rate: opt_field(v, "source_rate")?,
            devices: opt_field(v, "devices")?,
            v: opt_field(v, "v")?,
            deadline_ms: opt_field(v, "deadline_ms")?,
            delta: opt_field(v, "delta")?,
            prior_placement: opt_field(v, "prior_placement")?,
        }))
    }
}

/// Parse and validate one request line.
///
/// Malformed JSON or a bad request shape is [`WireError::BadRequest`];
/// a graph that fails structural or numeric validation is
/// [`WireError::InvalidGraph`]. Never panics on untrusted input.
///
/// Well-formed request lines take the tree-free scanner in
/// `crate::wire_fast` (request parsing is the read loop's dominant
/// per-byte cost on large graphs); anything it does not recognize is
/// re-parsed by the generic `Value`-based path, which stays the
/// authority for error reporting and edge cases.
pub fn parse_request(line: &str) -> Result<WireRequest, WireError> {
    match crate::wire_fast::parse(line) {
        Some(raw) => finish_request(raw),
        None => parse_request_generic(line),
    }
}

/// The generic `Value`-tree path (also the fast path's fallback).
fn parse_request_generic(line: &str) -> Result<WireRequest, WireError> {
    let raw: RawLine =
        serde_json::from_str(line).map_err(|e| WireError::BadRequest(e.to_string()))?;
    let raw = match raw {
        RawLine::Shutdown => return Ok(WireRequest::Shutdown),
        RawLine::Alloc(r) => r,
    };
    finish_request(raw)
}

/// Shared validation tail: everything between "the line is shaped like
/// a request" and "this is a checked [`WireRequest`]".
fn finish_request(raw: RawRequest) -> Result<WireRequest, WireError> {
    if let Some(v) = raw.v {
        if !SUPPORTED_VERSIONS.contains(&v) {
            return Err(WireError::UnsupportedVersion(format!(
                "protocol version {v} is not supported (this server speaks {})",
                SUPPORTED_VERSIONS.map(|s| format!("v{s}")).join("/")
            )));
        }
    }
    if let Some(sr) = raw.source_rate {
        if !(sr.is_finite() && sr > 0.0) {
            return Err(WireError::BadRequest(format!(
                "source_rate must be finite positive, got {sr}"
            )));
        }
    }
    if raw.devices == Some(0) {
        return Err(WireError::BadRequest(
            "devices must be at least 1".to_string(),
        ));
    }
    if raw.deadline_ms.is_some() && raw.v.unwrap_or(1) < 2 {
        return Err(WireError::BadRequest(
            "deadline_ms requires protocol v2 (send \"v\":2)".to_string(),
        ));
    }
    // Structural validation happens in the constructor; the follow-up
    // `validate_graph` adds the numeric checks shared with dataset
    // loading (and is cheap next to an inference pass).
    let graph = StreamGraph::from_parts(raw.ops, raw.edges, raw.channels)
        .map_err(|e| WireError::InvalidGraph(e.to_string()))?;
    let graph = validate_graph(&graph).map_err(|e| WireError::InvalidGraph(e.to_string()))?;
    let Some(delta) = raw.delta else {
        return Ok(WireRequest::Alloc(AllocRequest {
            id: raw.id,
            graph,
            source_rate: raw.source_rate,
            devices: raw.devices,
            v: raw.v,
            deadline_ms: raw.deadline_ms,
        }));
    };
    // A `delta` field makes the line a realloc. The delta's deep checks
    // (index ranges, missing edges) run at apply time in the replica;
    // shape problems are refused here so they never get routed.
    if raw.v.unwrap_or(1) < 2 {
        return Err(WireError::BadRequest(
            "realloc requires protocol v2 (send \"v\":2)".to_string(),
        ));
    }
    let Some(prior_placement) = raw.prior_placement else {
        return Err(WireError::BadRequest(
            "realloc requires `prior_placement`".to_string(),
        ));
    };
    if prior_placement.len() != graph.num_nodes() {
        return Err(WireError::BadRequest(format!(
            "prior_placement has {} entries for a {}-node graph",
            prior_placement.len(),
            graph.num_nodes()
        )));
    }
    delta
        .validate_shape()
        .map_err(|e| WireError::BadRequest(e.to_string()))?;
    Ok(WireRequest::Realloc(ReallocRequest {
        id: raw.id,
        graph,
        prior_placement,
        delta,
        source_rate: raw.source_rate,
        devices: raw.devices,
        v: raw.v,
        deadline_ms: raw.deadline_ms,
    }))
}

/// Successful allocation response.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocResponse {
    /// Echo of the request id.
    pub id: String,
    /// Device index per operator, in node order.
    pub placement: Vec<u32>,
    /// Analytic relative throughput of the placement (`α`).
    pub relative_throughput: f64,
    /// True if the placement came from the server's LRU cache.
    pub cached: bool,
    /// Protocol version echo; `None` on the v1 default path, where the
    /// serialized bytes must stay exactly the pre-versioning format.
    pub v: Option<u64>,
    /// Replica shard that served the request (v2 only) — for debugging
    /// the router's fingerprint→shard assignment.
    pub shard: Option<u32>,
    /// Which incremental path produced this placement: `"warm"`
    /// (projected + refined) or `"full"` (churn exceeded the threshold;
    /// full pipeline on the mutated graph). Absent on plain allocs,
    /// cached replays, and empty-delta reallocs — the latter so an
    /// empty-delta response reproduces the prior response bytes.
    pub realloc: Option<String>,
}

impl AllocResponse {
    /// Render as one JSONL response line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

// Hand-rolled (the vendored serde derive has no optional-field support):
// `v`/`shard` are emitted only when present, so a v1 response line is
// byte-identical to the pre-versioning wire format.
impl Serialize for AllocResponse {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            ("placement".to_string(), self.placement.serialize()),
            (
                "relative_throughput".to_string(),
                self.relative_throughput.serialize(),
            ),
            ("cached".to_string(), Value::Bool(self.cached)),
        ];
        if let Some(v) = self.v {
            fields.push(("v".to_string(), v.serialize()));
        }
        if let Some(shard) = self.shard {
            fields.push(("shard".to_string(), shard.serialize()));
        }
        if let Some(realloc) = &self.realloc {
            fields.push(("realloc".to_string(), Value::Str(realloc.clone())));
        }
        Value::Object(fields)
    }
}

impl Deserialize for AllocResponse {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        Ok(AllocResponse {
            id: String::deserialize(value.field("id")?)?,
            placement: Vec::<u32>::deserialize(value.field("placement")?)?,
            relative_throughput: f64::deserialize(value.field("relative_throughput")?)?,
            cached: bool::deserialize(value.field("cached")?)?,
            v: opt_field(value, "v")?,
            shard: opt_field(value, "shard")?,
            realloc: opt_field(value, "realloc")?,
        })
    }
}

/// Error response; `id` is `null` when the request was too malformed to
/// carry one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Echo of the request id, if it could be parsed.
    pub id: Option<String>,
    /// Machine-readable code ([`WireError::code`]).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorResponse {
    /// Render as one JSONL response line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire value renders")
    }
}

/// A parsed response line: success or named error.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Successful allocation.
    Ok(AllocResponse),
    /// Named protocol error.
    Err(ErrorResponse),
}

impl WireResponse {
    /// Parse one response line.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        serde_json::from_str(line).map_err(|e| WireError::BadRequest(e.to_string()))
    }

    /// The response's request id, if present.
    pub fn id(&self) -> Option<&str> {
        match self {
            WireResponse::Ok(r) => Some(&r.id),
            WireResponse::Err(e) => e.id.as_deref(),
        }
    }
}

impl Deserialize for WireResponse {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        if v.field("error").is_ok() {
            ErrorResponse::deserialize(v).map(WireResponse::Err)
        } else {
            AllocResponse::deserialize(v).map(WireResponse::Ok)
        }
    }
}

// Child module (not a sibling) so the harness reaches the private
// `finish_request` / `parse_request_generic` halves it cross-checks.
#[cfg(test)]
#[path = "wire_fuzz.rs"]
mod wire_fuzz;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StreamGraphBuilder;

    fn tiny() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(100.0));
        let c = b.add_node(Operator::new(200.0));
        b.add_edge(a, c, Channel::new(8.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn request_roundtrips_with_overrides() {
        let req = AllocRequest {
            id: "r1".to_string(),
            graph: tiny(),
            source_rate: Some(1e4),
            devices: Some(8),
            v: None,
            deadline_ms: None,
        };
        let line = req.to_line();
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => {
                assert_eq!(back.id, "r1");
                assert_eq!(back.graph, req.graph);
                assert_eq!(back.source_rate, Some(1e4));
                assert_eq!(back.devices, Some(8));
            }
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn omitted_overrides_parse_as_none() {
        let req = AllocRequest {
            id: "r2".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: None,
            deadline_ms: None,
        };
        let line = req.to_line();
        assert!(!line.contains("source_rate"));
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => {
                assert_eq!(back.source_rate, None);
                assert_eq!(back.devices, None);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_line_parses() {
        assert!(matches!(
            parse_request(shutdown_line()),
            Ok(WireRequest::Shutdown)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"reboot"}"#),
            Err(WireError::BadRequest(_))
        ));
    }

    #[test]
    fn garbage_is_bad_request_not_panic() {
        for line in ["{not json", "", "42", r#"{"id":"x"}"#] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code(), "bad-request", "line {line:?} gave {err}");
        }
    }

    #[test]
    fn structurally_broken_graph_is_invalid_graph() {
        // Dangling endpoint: edge points at node 9 of a 2-node graph.
        let line = AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: None,
            deadline_ms: None,
        }
        .to_line()
        .replacen("[[0,1]]", "[[0,9]]", 1);
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code(), "invalid-graph", "{err}");

        // Numerically broken: negative operator cost.
        let line = AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: None,
            deadline_ms: None,
        }
        .to_line()
        .replacen("\"ipt\":100", "\"ipt\":-100", 1);
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code(), "invalid-graph", "{err}");
    }

    #[test]
    fn bad_overrides_are_rejected() {
        let mk = |sr: Option<f64>, dev: Option<usize>| AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: sr,
            devices: dev,
            v: None,
            deadline_ms: None,
        };
        assert!(matches!(
            parse_request(&mk(Some(-1.0), None).to_line()),
            Err(WireError::BadRequest(_))
        ));
        assert!(matches!(
            parse_request(&mk(None, Some(0)).to_line()),
            Err(WireError::BadRequest(_))
        ));
    }

    #[test]
    fn responses_roundtrip() {
        let ok = AllocResponse {
            id: "r1".to_string(),
            placement: vec![0, 2, 1],
            relative_throughput: 0.875,
            cached: true,
            v: None,
            shard: None,
            realloc: None,
        };
        assert_eq!(
            WireResponse::parse(&ok.to_line()).unwrap(),
            WireResponse::Ok(ok.clone())
        );

        let err = WireError::Timeout("waited 5000 ms".to_string()).response(Some("r2".to_string()));
        let back = WireResponse::parse(&err.to_line()).unwrap();
        assert_eq!(back, WireResponse::Err(err));
        assert_eq!(back.id(), Some("r2"));

        // An id-less error (unparseable request) still roundtrips.
        let anon = WireError::BadRequest("not json".to_string()).response(None);
        let back = WireResponse::parse(&anon.to_line()).unwrap();
        assert_eq!(back.id(), None);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(WireError::Draining.code(), "draining");
        assert_eq!(WireError::Overloaded(String::new()).code(), "overloaded");
        assert_eq!(WireError::Timeout(String::new()).code(), "timeout");
        assert_eq!(
            WireError::DeadlineExceeded(String::new()).code(),
            "deadline-exceeded"
        );
        assert_eq!(WireError::Internal(String::new()).code(), "internal");
        assert_eq!(
            WireError::UnsupportedVersion(String::new()).code(),
            "unsupported-version"
        );
        let listed: Vec<&str> = WireError::CODES.to_vec();
        for err in [
            WireError::BadRequest(String::new()),
            WireError::InvalidGraph(String::new()),
            WireError::Timeout(String::new()),
            WireError::DeadlineExceeded(String::new()),
            WireError::Overloaded(String::new()),
            WireError::Draining,
            WireError::Internal(String::new()),
            WireError::UnsupportedVersion(String::new()),
        ] {
            assert!(listed.contains(&err.code()), "{} not in CODES", err.code());
        }
    }

    #[test]
    fn v1_request_and_response_bytes_are_unchanged() {
        // The default path must not grow fields: absent `v` serializes
        // to exactly the pre-versioning wire bytes.
        let req = AllocRequest {
            id: "r1".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: None,
            deadline_ms: None,
        };
        let line = req.to_line();
        assert!(!line.contains("\"v\""), "{line}");
        let resp = AllocResponse {
            id: "r1".to_string(),
            placement: vec![0, 1],
            relative_throughput: 1.0,
            cached: false,
            v: None,
            shard: None,
            realloc: None,
        };
        let line = resp.to_line();
        assert!(!line.contains("\"v\"") && !line.contains("shard"), "{line}");
        assert_eq!(
            line,
            r#"{"id":"r1","placement":[0,1],"relative_throughput":1,"cached":false}"#
        );
    }

    #[test]
    fn v2_round_trips_with_shard() {
        let req = AllocRequest {
            id: "r2".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: Some(2),
            deadline_ms: None,
        };
        let line = req.to_line();
        assert!(line.contains("\"v\":2"), "{line}");
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => {
                assert_eq!(back.v, Some(2));
                assert_eq!(back.version(), 2);
            }
            other => panic!("expected alloc, got {other:?}"),
        }
        let resp = AllocResponse {
            id: "r2".to_string(),
            placement: vec![1, 0],
            relative_throughput: 0.5,
            cached: true,
            v: Some(2),
            shard: Some(3),
            realloc: None,
        };
        let back = WireResponse::parse(&resp.to_line()).unwrap();
        assert_eq!(back, WireResponse::Ok(resp));
    }

    #[test]
    fn unknown_version_is_a_named_error() {
        // Explicit v1 is accepted (it is the default spelled out).
        let mut req = AllocRequest {
            id: "r".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: Some(1),
            deadline_ms: None,
        };
        assert!(parse_request(&req.to_line()).is_ok());
        req.v = Some(3);
        let err = parse_request(&req.to_line()).unwrap_err();
        assert_eq!(err.code(), "unsupported-version");
        assert!(err.detail().contains('3'), "{err}");
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compat() {
        // A future client may add fields; this server must not refuse
        // them (only an unknown `v` is refused, by name).
        let line = AllocRequest {
            id: "fc".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: Some(2),
            deadline_ms: None,
        }
        .to_line()
        .replacen("\"v\":2", "\"v\":2,\"priority\":\"high\",\"tags\":[1,2]", 1);
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => assert_eq!(back.id, "fc"),
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn deadline_requires_v2_and_roundtrips() {
        let mut req = AllocRequest {
            id: "d1".to_string(),
            graph: tiny(),
            source_rate: None,
            devices: None,
            v: Some(2),
            deadline_ms: Some(250),
        };
        let line = req.to_line();
        assert!(line.contains("\"deadline_ms\":250"), "{line}");
        match parse_request(&line).unwrap() {
            WireRequest::Alloc(back) => assert_eq!(back.deadline_ms, Some(250)),
            other => panic!("expected alloc, got {other:?}"),
        }
        // A deadline on a v1 line is refused by name: v1 clients never
        // sent the field, so its presence is a version mismatch.
        for v in [None, Some(1)] {
            req.v = v;
            let err = parse_request(&req.to_line()).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{err}");
            assert!(err.detail().contains("deadline_ms"), "{err}");
        }
    }

    fn tiny_realloc(delta: GraphDelta, v: Option<u64>) -> ReallocRequest {
        ReallocRequest {
            id: "ra".to_string(),
            graph: tiny(),
            prior_placement: vec![0, 1],
            delta,
            source_rate: None,
            devices: None,
            v,
            deadline_ms: None,
        }
    }

    #[test]
    fn realloc_roundtrips_including_delta() {
        let delta = GraphDelta {
            set_ipt: vec![(1, 50.0)],
            devices: Some(2),
            ..GraphDelta::default()
        };
        let line = tiny_realloc(delta.clone(), Some(2)).to_line();
        match parse_request(&line).unwrap() {
            WireRequest::Realloc(back) => {
                assert_eq!(back.id, "ra");
                assert_eq!(back.prior_placement, vec![0, 1]);
                assert_eq!(back.delta, delta);
                assert_eq!(back.version(), 2);
            }
            other => panic!("expected realloc, got {other:?}"),
        }
    }

    #[test]
    fn realloc_below_v2_is_bad_request() {
        for v in [None, Some(1)] {
            let line = tiny_realloc(GraphDelta::default(), v).to_line();
            let err = parse_request(&line).unwrap_err();
            assert_eq!(err.code(), "bad-request", "{err}");
            assert!(err.detail().contains("v2"), "{err}");
        }
        // v3 realloc is still the named version error.
        let line = tiny_realloc(GraphDelta::default(), Some(3)).to_line();
        assert_eq!(
            parse_request(&line).unwrap_err().code(),
            "unsupported-version"
        );
    }

    #[test]
    fn realloc_validates_placement_and_delta_shape() {
        let mut req = tiny_realloc(GraphDelta::default(), Some(2));
        req.prior_placement = vec![0];
        let err = parse_request(&req.to_line()).unwrap_err();
        assert_eq!(err.code(), "bad-request", "{err}");

        // A delta missing its parallel channel array is refused at parse.
        let req = tiny_realloc(
            GraphDelta {
                add_edges: vec![(0, 1)],
                add_channels: vec![],
                ..GraphDelta::default()
            },
            Some(2),
        );
        let err = parse_request(&req.to_line()).unwrap_err();
        assert_eq!(err.code(), "bad-request", "{err}");

        // A missing prior_placement is refused by name.
        let line = tiny_realloc(GraphDelta::default(), Some(2))
            .to_line()
            .replacen("\"prior_placement\":[0,1],", "", 1);
        let err = parse_request(&line).unwrap_err();
        assert!(err.detail().contains("prior_placement"), "{err}");
    }

    /// The fast scanner and the generic `Value` path must agree on
    /// every line: identical request on success, identical error code
    /// on failure. The corpus mixes canonical client output with the
    /// shapes the fast path is expected to punt on (whitespace,
    /// escapes, nulls, unknown fields, malformed bytes).
    #[test]
    fn fast_path_matches_generic_path() {
        let alloc = |v| AllocRequest {
            id: "r1".to_string(),
            graph: tiny(),
            source_rate: Some(1e4),
            devices: Some(8),
            v,
            deadline_ms: None,
        };
        let full_delta = GraphDelta {
            remove_nodes: vec![1],
            add_nodes: vec![Operator::new(50.0)],
            add_edges: vec![(0, 2)],
            add_channels: vec![Channel::with_selectivity(8.0, 0.25)],
            set_ipt: vec![(0, 10.0)],
            devices: Some(4),
            source_rate: Some(5e3),
            ..GraphDelta::default()
        };
        let deadline = {
            let mut r = alloc(Some(2));
            r.deadline_ms = Some(100);
            r
        };
        let canonical = [
            alloc(None).to_line(),
            alloc(Some(2)).to_line(),
            deadline.to_line(),
            tiny_realloc(GraphDelta::default(), Some(2)).to_line(),
            tiny_realloc(full_delta, Some(2)).to_line(),
            shutdown_line().to_string(),
        ];
        let awkward = [
            // Whitespace, reordered and unknown fields, exotic numbers.
            " { \"graph\" : {\"channels\":[{\"selectivity\":1,\"payload\":8.5e0,\"x\":[]}],\
             \"ops\":[{\"ipt\":1e2},{\"ipt\":200.}],\"edges\":[[ 0 , 1 ]]} , \"id\" : \"r2\" , \
             \"future\": {\"deep\":[[{\"a\":\"b\\\\c\"}]]} } "
                .to_string(),
            // Escaped id (fast path punts, result must still match).
            r#"{"id":"r\n3","graph":{"ops":[{"ipt":1},{"ipt":2}],"edges":[[0,1]],"channels":[{"payload":1,"selectivity":1}]}}"#.to_string(),
            // Null optionals are "absent" on the generic path.
            r#"{"id":"r4","source_rate":null,"graph":{"ops":[{"ipt":1},{"ipt":2}],"edges":[[0,1]],"channels":[{"payload":1,"selectivity":1}]}}"#.to_string(),
            // Duplicate key: generic takes the first occurrence.
            r#"{"id":"a","id":"b","graph":{"ops":[{"ipt":1},{"ipt":2}],"edges":[[0,1]],"channels":[{"payload":1,"selectivity":1}]}}"#.to_string(),
            // Failure shapes: bad JSON, wrong types, missing pieces,
            // numbers the typed parsers reject.
            "{".to_string(),
            r#"{"id":5,"graph":{"ops":[],"edges":[],"channels":[]}}"#.to_string(),
            r#"{"id":"x"}"#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[[0,1,2]],"channels":[]}}"#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[[0.5,1]],"channels":[]}}"#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1e}],"edges":[],"channels":[]}} "#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[],"channels":[]},"v":2,"delta":{"set_ipt":[[0,1.5]]}}"#.to_string(),
            r#"{"cmd":"shutdown","junk":1}"#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[],"channels":[]}} trailing"#.to_string(),
            // A deadline without v2 must be refused by both paths.
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[],"channels":[]},"deadline_ms":5}"#.to_string(),
            r#"{"id":"x","graph":{"ops":[{"ipt":1}],"edges":[],"channels":[]},"v":2,"deadline_ms":-3}"#.to_string(),
        ];
        for line in canonical.iter().chain(awkward.iter()) {
            let fast = parse_request(line);
            let generic = parse_request_generic(line);
            match (&fast, &generic) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{line}"),
                (Err(a), Err(b)) => assert_eq!(a.code(), b.code(), "{line}: {a} vs {b}"),
                other => panic!("paths disagree on {line}: {other:?}"),
            }
        }
        // The canonical client lines must actually take the fast path —
        // if they fall back, the optimization is silently dead.
        for line in &canonical[..5] {
            assert!(crate::wire_fast::parse(line).is_some(), "fell back: {line}");
        }
    }

    #[test]
    fn realloc_response_marker_roundtrips_and_stays_off_alloc_paths() {
        let resp = AllocResponse {
            id: "ra".to_string(),
            placement: vec![1, 0],
            relative_throughput: 0.75,
            cached: false,
            v: Some(2),
            shard: Some(0),
            realloc: Some("warm".to_string()),
        };
        let line = resp.to_line();
        assert!(line.contains("\"realloc\":\"warm\""), "{line}");
        assert_eq!(WireResponse::parse(&line).unwrap(), WireResponse::Ok(resp));
    }
}
