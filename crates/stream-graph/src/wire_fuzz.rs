//! Structure-aware seeded fuzzing of the wire request parsers.
//!
//! Two pins, checked over thousands of generated and mutated lines:
//!
//! 1. **No panic**: [`super::parse_request`] never panics, whatever the
//!    bytes — the read loop feeds it untrusted input.
//! 2. **Fast ≡ generic**: whenever the tree-free scanner in
//!    [`crate::wire_fast`] claims a line (returns `Some`), finishing its
//!    raw request must produce *exactly* the result the generic
//!    `Value`-tree parser produces for the same line — same request or
//!    the same named error. The fast path is allowed to defer (`None`),
//!    never to disagree.
//!
//! The generator is structure-aware: it builds syntactically plausible
//! request lines from seeded parts (field subsets, key orders, number
//! spellings, realloc payloads), then applies byte- and token-level
//! mutations that keep inputs *near* the grammar, where parser
//! disagreements actually live. Everything derives from one fixed
//! `ChaCha8Rng` seed, so a failure reproduces bit-for-bit.

use super::{finish_request, parse_request, parse_request_generic};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The one cross-parser check. Returns a description of what the line
/// did, so the corpus test can assert it exercised both paths.
fn check_line(line: &str) -> &'static str {
    // Pin 1: neither path may panic. (A panic here fails the test with
    // the offending line in the unwind message via `checked`.)
    let generic = parse_request_generic(line);
    match crate::wire_fast::parse(line) {
        None => {
            // Deferring is always legal; the public entry point then
            // equals the generic path by construction.
            assert_eq!(parse_request(line), generic, "deferred line diverged");
            if generic.is_ok() {
                "deferred-ok"
            } else {
                "deferred-err"
            }
        }
        Some(raw) => {
            let fast = finish_request(raw);
            assert_eq!(fast, generic, "fast path disagreed on: {line}");
            if generic.is_ok() {
                "fast-ok"
            } else {
                "fast-err"
            }
        }
    }
}

fn check(line: &str, outcomes: &mut std::collections::HashMap<&'static str, usize>) {
    let result = std::panic::catch_unwind(|| check_line(line));
    match result {
        Ok(outcome) => *outcomes.entry(outcome).or_insert(0) += 1,
        Err(_) => panic!("parser panicked or pins failed on line: {line}"),
    }
}

/// A random JSON number spelling: ints, floats, exponents, signs — the
/// spellings where a hand-rolled scanner and a real parser can drift.
fn number(rng: &mut ChaCha8Rng) -> String {
    match rng.gen_range(0..6) {
        0 => format!("{}", rng.gen_range(0..100_000)),
        1 => format!("-{}", rng.gen_range(0..1000)),
        2 => format!("{:.3}", rng.gen_range(0.0..1000.0)),
        3 => format!("{}e{}", rng.gen_range(1..100), rng.gen_range(0..4)),
        4 => format!("{:.1}E-{}", rng.gen_range(1.0..9.0), rng.gen_range(1..3)),
        _ => "18446744073709551616".to_string(), // > u64::MAX
    }
}

/// Build one structurally plausible request line: a small graph with a
/// seeded subset of optional fields, in seeded key order.
fn plausible_request(rng: &mut ChaCha8Rng) -> String {
    let nodes = rng.gen_range(1..5usize);
    let ops: Vec<String> = (0..nodes)
        .map(|_| format!("{{\"ipt\":{}}}", rng.gen_range(1..500)))
        .collect();
    let edges: Vec<String> = (1..nodes)
        .map(|i| format!("[{},{}]", rng.gen_range(0..i), i))
        .collect();
    let channels: Vec<String> = (1..nodes)
        .map(|_| {
            format!(
                "{{\"payload\":{},\"selectivity\":{}}}",
                rng.gen_range(1..64),
                rng.gen_range(1..3)
            )
        })
        .collect();
    let graph = format!(
        "\"graph\":{{\"ops\":[{}],\"edges\":[{}],\"channels\":[{}]}}",
        ops.join(","),
        edges.join(","),
        channels.join(",")
    );

    let mut fields = vec![format!("\"id\":\"f{}\"", rng.gen_range(0..100)), graph];
    if rng.gen_bool(0.4) {
        fields.push(format!("\"source_rate\":{}", number(rng)));
    }
    if rng.gen_bool(0.3) {
        fields.push(format!("\"devices\":{}", rng.gen_range(0..20)));
    }
    if rng.gen_bool(0.5) {
        fields.push(format!("\"v\":{}", rng.gen_range(0..4)));
    }
    if rng.gen_bool(0.4) {
        fields.push(format!("\"deadline_ms\":{}", number(rng)));
    }
    if rng.gen_bool(0.2) {
        // Realloc shape: a (often invalid) prior placement and delta.
        let prior: Vec<String> = (0..nodes)
            .map(|_| rng.gen_range(0..4u32).to_string())
            .collect();
        fields.push(format!("\"prior_placement\":[{}]", prior.join(",")));
        fields.push("\"delta\":{\"rate_factor\":1.5}".to_string());
    }
    if rng.gen_bool(0.15) {
        // A duplicate key: generic takes the first, fast must defer.
        let dup = fields[rng.gen_range(0..fields.len())].clone();
        fields.push(dup);
    }
    // Seeded key order: the fast scanner must not care.
    for i in (1..fields.len()).rev() {
        let j = rng.gen_range(0..=i);
        fields.swap(i, j);
    }
    format!("{{{}}}", fields.join(","))
}

/// Mutate a line near the grammar: byte edits, token swaps, truncation,
/// whitespace injection — the classic torn/corrupt-line shapes.
fn mutate(rng: &mut ChaCha8Rng, line: &str) -> String {
    let mut bytes = line.as_bytes().to_vec();
    match rng.gen_range(0..7) {
        0 => {
            // Truncate: a torn write mid-line.
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        1 if !bytes.is_empty() => {
            // Flip one byte to a random printable character.
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0x20..0x7fu8);
        }
        2 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes.remove(i);
        }
        3 => {
            let i = rng.gen_range(0..=bytes.len());
            let junk = *[b'{', b'}', b'[', b']', b'"', b',', b':', b'-', b'7']
                .choose(rng)
                .expect("nonempty");
            bytes.insert(i, junk);
        }
        4 => {
            // Inject legal whitespace at a random spot.
            let i = rng.gen_range(0..=bytes.len());
            for b in [b' ', b'\t'] {
                bytes.insert(i, b);
            }
        }
        5 => {
            // Swap two tokens' worth of bytes.
            if bytes.len() > 8 {
                let i = rng.gen_range(0..bytes.len() - 4);
                let j = rng.gen_range(0..bytes.len() - 4);
                for k in 0..4 {
                    bytes.swap(i + k, j + k);
                }
            }
        }
        _ => {
            // Replace a key name with a near-miss spelling.
            let line = String::from_utf8_lossy(&bytes).into_owned();
            let swaps = [
                ("\"id\"", "\"Id\""),
                ("\"graph\"", "\"grap\""),
                ("\"ops\"", "\"opss\""),
                ("\"deadline_ms\"", "\"deadline_m\""),
                ("\"v\"", "\"vv\""),
                ("\"edges\"", "\"edge\""),
            ];
            let (from, to) = swaps[rng.gen_range(0..swaps.len())];
            return line.replacen(from, to, 1);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzz_fast_path_agrees_with_generic_parser() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5747_4652);
    let mut outcomes = std::collections::HashMap::new();

    // Hand-picked seeds first: shapes known to sit on parser edges.
    for line in [
        "",
        "{}",
        "null",
        "[]",
        "{\"cmd\":\"shutdown\"}",
        "{\"cmd\":\"shutdow\"}",
        "{\"cmd\":7}",
        "{\"id\":\"x\",\"graph\":{\"ops\":[],\"edges\":[],\"channels\":[]}}",
        "{\"id\":\"x\",\"graph\":{\"ops\":[{\"ipt\":1}],\"edges\":[],\"channels\":[]},\
         \"deadline_ms\":0}",
        "{\"id\":\"x\",\"graph\":{\"ops\":[{\"ipt\":1}],\"edges\":[],\"channels\":[]},\
         \"v\":2,\"deadline_ms\":250}",
        "{\"id\":\"x\",\"graph\":{\"ops\":[{\"ipt\":1}],\"edges\":[],\"channels\":[]},\
         \"deadline_ms\":-3}",
        "{\"id\":\"x\",\"graph\":{\"ops\":[{\"ipt\":1}],\"edges\":[],\"channels\":[]},\
         \"deadline_ms\":1e3}",
    ] {
        check(line, &mut outcomes);
    }

    for _ in 0..800 {
        let line = plausible_request(&mut rng);
        check(&line, &mut outcomes);
        // Several mutants of every plausible line: corruption near the
        // grammar is where the two parsers could split.
        for _ in 0..3 {
            let mutant = mutate(&mut rng, &line);
            check(&mutant, &mut outcomes);
        }
    }

    // The corpus must actually exercise every quadrant; a generator
    // regression that (say) stops producing fast-path-eligible lines
    // would otherwise hollow out the pin silently.
    for quadrant in ["fast-ok", "fast-err", "deferred-ok", "deferred-err"] {
        assert!(
            outcomes.get(quadrant).copied().unwrap_or(0) > 10,
            "corpus too narrow: {quadrant} hit {:?} times",
            outcomes.get(quadrant)
        );
    }
}
