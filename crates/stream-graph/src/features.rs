//! Numeric feature extraction for learned models.
//!
//! The paper's node feature vector contains the operator's *CPU
//! utilisation* `(ipt * R) / MIPS` and its emitted *payload*; the edge
//! feature vector contains the transmission load (the *data saturation
//! rate* `(P * R) / BW`). We add a few cheap structural features (degrees,
//! source/sink flags, dataflow depth) that every baseline gets equally.

use crate::cluster::ClusterSpec;
use crate::graph::{NodeId, StreamGraph};
use crate::rates::TupleRates;
use crate::topo;
use serde::{Deserialize, Serialize};

/// Number of per-node features.
pub const NODE_FEATURES: usize = 6;
/// Number of per-edge features.
pub const EDGE_FEATURES: usize = 4;

/// Row-major `[num_nodes x NODE_FEATURES]` feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFeatures(pub Vec<f32>);

/// Row-major `[num_edges x EDGE_FEATURES]` feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeFeatures(pub Vec<f32>);

/// All features of a graph in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphFeatures {
    /// Node feature matrix.
    pub node: NodeFeatures,
    /// Edge feature matrix.
    pub edge: EdgeFeatures,
    /// Number of nodes (rows of `node`).
    pub num_nodes: usize,
    /// Number of edges (rows of `edge`).
    pub num_edges: usize,
}

impl GraphFeatures {
    /// Extract features of `graph` under `cluster` at `source_rate`.
    pub fn extract(graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Self {
        let rates = TupleRates::compute(graph, source_rate);
        Self::extract_with_rates(graph, cluster, &rates)
    }

    /// Extract features reusing precomputed rates.
    pub fn extract_with_rates(
        graph: &StreamGraph,
        cluster: &ClusterSpec,
        rates: &TupleRates,
    ) -> Self {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let dev_capacity = cluster.instr_per_sec();
        let bw = cluster.link_bytes_per_sec();
        let source_rate = rates.source_rate.max(1e-9);

        let order = graph.topo_order();
        let depth = topo::depths(n, graph.edge_list(), order);
        let max_depth = depth.iter().copied().max().unwrap_or(0).max(1) as f32;

        let mut node = Vec::with_capacity(n * NODE_FEATURES);
        for v in graph.node_ids() {
            let r = rates.node[v.idx()];
            let cpu_util = (graph.op(v).ipt * r / dev_capacity) as f32;
            let out_payload: f64 = graph
                .out_edges(v)
                .map(|(_, e)| rates.edge[e.idx()] * graph.channel(e).payload)
                .sum();
            let out_sat = (out_payload / bw) as f32;
            node.push(cpu_util);
            node.push(out_sat);
            node.push(degree_feature(graph.in_degree(v)));
            node.push(degree_feature(graph.out_degree(v)));
            node.push(if graph.in_degree(v) == 0 { 1.0 } else { 0.0 });
            node.push(depth[v.idx()] as f32 / max_depth);
        }

        let mut edge = Vec::with_capacity(m * EDGE_FEATURES);
        for (e, s, _d) in graph.edges_iter() {
            let traffic = rates.edge[e.idx()] * graph.channel(e).payload;
            let sat = (traffic / bw) as f32;
            edge.push(sat);
            edge.push((1.0 + sat as f64).ln() as f32);
            edge.push((rates.edge[e.idx()] / source_rate) as f32);
            // How dominant is this edge among its source's outputs?
            let src_out: f64 = graph
                .out_edges(s)
                .map(|(_, ee)| rates.edge[ee.idx()] * graph.channel(ee).payload)
                .sum();
            edge.push(if src_out > 0.0 {
                (traffic / src_out) as f32
            } else {
                0.0
            });
        }

        Self {
            node: NodeFeatures(node),
            edge: EdgeFeatures(edge),
            num_nodes: n,
            num_edges: m,
        }
    }

    /// Feature row of node `v`.
    pub fn node_row(&self, v: NodeId) -> &[f32] {
        let i = v.idx() * NODE_FEATURES;
        &self.node.0[i..i + NODE_FEATURES]
    }

    /// Feature row of edge `e`.
    pub fn edge_row(&self, e: usize) -> &[f32] {
        let i = e * EDGE_FEATURES;
        &self.edge.0[i..i + EDGE_FEATURES]
    }
}

/// Compress a degree into a bounded feature.
#[inline]
fn degree_feature(d: usize) -> f32 {
    ((1 + d) as f32).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn simple() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let a = b.add_node(Operator::new(1000.0));
        let c = b.add_node(Operator::new(2000.0));
        b.add_edge(a, c, Channel::new(100.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn shapes_match() {
        let g = simple();
        let f = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 1e4);
        assert_eq!(f.node.0.len(), 2 * NODE_FEATURES);
        assert_eq!(f.edge.0.len(), EDGE_FEATURES);
        assert_eq!(f.num_nodes, 2);
        assert_eq!(f.num_edges, 1);
    }

    #[test]
    fn cpu_utilisation_matches_paper_formula() {
        let g = simple();
        let cluster = ClusterSpec::paper_medium(4);
        let f = GraphFeatures::extract(&g, &cluster, 1e4);
        // (IPT * R) / (MIPS * 1e6) for the source: 1000 * 1e4 / 1.25e9
        let expect = 1000.0 * 1e4 / 1.25e9;
        assert!((f.node_row(NodeId(0))[0] as f64 - expect).abs() < 1e-9);
    }

    #[test]
    fn edge_saturation_matches_paper_formula() {
        let g = simple();
        let cluster = ClusterSpec::paper_medium(4);
        let f = GraphFeatures::extract(&g, &cluster, 1e4);
        // (P * R) / BW = 100 B * 1e4 /s / 125e6 B/s
        let expect = 100.0 * 1e4 / 125e6;
        assert!((f.edge_row(0)[0] as f64 - expect).abs() < 1e-9);
    }

    #[test]
    fn source_and_sink_flags() {
        let g = simple();
        let f = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 1e4);
        assert_eq!(f.node_row(NodeId(0))[4], 1.0); // source flag
        assert_eq!(f.node_row(NodeId(1))[4], 0.0);
        assert_eq!(f.node_row(NodeId(0))[5], 0.0); // depth 0
        assert_eq!(f.node_row(NodeId(1))[5], 1.0); // depth 1 of max 1
    }

    #[test]
    fn features_are_finite() {
        let g = simple();
        let f = GraphFeatures::extract(&g, &ClusterSpec::paper_medium(4), 0.0);
        assert!(f.node.0.iter().all(|x| x.is_finite()));
        assert!(f.edge.0.iter().all(|x| x.is_finite()));
    }
}
