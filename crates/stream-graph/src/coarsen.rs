//! Graph coarsening by edge collapsing.
//!
//! The action space of the paper's RL model is one Bernoulli decision per
//! directed edge: *collapse* (merge the endpoints into one coarse node) or
//! keep. [`Coarsening::from_collapse`] applies a decision vector with a
//! union-find, producing a [`CoarseGraph`] — aggregated CPU demand per coarse
//! node and aggregated inter-group traffic per coarse edge — plus the node
//! map needed to lift a coarse placement back (see
//! [`crate::Placement::lift`]).

use crate::graph::StreamGraph;
use crate::rates::TupleRates;
use crate::unionfind::UnionFind;
use crate::weighted::WeightedGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The contracted form of a [`StreamGraph`].
///
/// Contraction of a DAG can create directed cycles between groups, so a
/// coarse graph is *not* a `StreamGraph`; it keeps directed aggregated
/// traffic edges (for learned partitioners that want directional features)
/// and converts to an undirected [`WeightedGraph`] for Metis-style
/// partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseGraph {
    /// CPU demand of each coarse node (instructions/second): the sum of
    /// `R_v * ipt_v` over members.
    pub node_cpu: Vec<f64>,
    /// Number of original nodes merged into each coarse node.
    pub members: Vec<u32>,
    /// Directed inter-group edges `(src_group, dst_group)`, deduplicated.
    pub edges: Vec<(u32, u32)>,
    /// Aggregated traffic (bytes/second) per directed coarse edge.
    pub edge_traffic: Vec<f64>,
    /// Traffic (bytes/second) *internalised* by the coarsening — flow on
    /// original edges whose endpoints were merged. This is what a good
    /// coarsening maximises (Fig. 9 of the paper).
    pub internal_traffic: f64,
}

impl CoarseGraph {
    /// Number of coarse nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_cpu.len()
    }

    /// Number of directed coarse edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Undirected weighted view for partitioning (anti-parallel directed
    /// coarse edges merge; weights are traffic).
    pub fn to_weighted(&self) -> WeightedGraph {
        WeightedGraph::new(
            self.node_cpu.clone(),
            self.edges
                .iter()
                .zip(&self.edge_traffic)
                .map(|(&(a, b), &w)| (a, b, w)),
        )
    }

    /// Total inter-group traffic remaining after coarsening.
    pub fn total_external_traffic(&self) -> f64 {
        self.edge_traffic.iter().sum()
    }
}

/// A coarsening: the coarse graph plus the original→coarse node map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coarsening {
    /// For each original node, its coarse node id (dense `0..coarse.num_nodes()`).
    pub node_map: Vec<u32>,
    /// The contracted graph.
    pub coarse: CoarseGraph,
}

impl Coarsening {
    /// Contract `graph` by merging the endpoints of every edge `e` with
    /// `collapse[e] == true`, using precomputed tuple rates for weights.
    ///
    /// `max_group_cpu` optionally caps the CPU demand of a coarse node:
    /// merges that would push a group past the cap are skipped (edges are
    /// considered in the given `priority` order if provided, otherwise in
    /// edge-id order). The paper relies on learning to avoid overload but a
    /// hard cap keeps rollouts feasible early in training.
    pub fn from_collapse(
        graph: &StreamGraph,
        rates: &TupleRates,
        collapse: &[bool],
        max_group_cpu: Option<f64>,
        priority: Option<&[u32]>,
    ) -> Self {
        assert_eq!(collapse.len(), graph.num_edges(), "one decision per edge");
        let n = graph.num_nodes();
        let cpu = rates.cpu_demand(graph);
        let mut group_cpu: Vec<f64> = cpu.clone();
        let mut uf = UnionFind::new(n);

        let order: Vec<u32> = match priority {
            Some(p) => {
                assert_eq!(p.len(), graph.num_edges());
                p.to_vec()
            }
            None => (0..graph.num_edges() as u32).collect(),
        };

        for &eid in &order {
            if !collapse[eid as usize] {
                continue;
            }
            let (s, d) = graph.edge(crate::graph::EdgeId(eid));
            let (rs, rd) = (uf.find(s.0), uf.find(d.0));
            if rs == rd {
                continue;
            }
            if let Some(cap) = max_group_cpu {
                if group_cpu[rs as usize] + group_cpu[rd as usize] > cap {
                    continue;
                }
            }
            let merged = group_cpu[rs as usize] + group_cpu[rd as usize];
            uf.union(rs, rd);
            let root = uf.find(rs);
            group_cpu[root as usize] = merged;
        }

        Self::from_union_find(graph, rates, &mut uf)
    }

    /// Contract `graph` according to an arbitrary grouping already held in a
    /// union-find (used by Metis-guided training and tests).
    pub fn from_union_find(graph: &StreamGraph, rates: &TupleRates, uf: &mut UnionFind) -> Self {
        let (node_map, k) = uf.dense_labels();
        Self::from_node_map(graph, rates, node_map, k)
    }

    /// Contract `graph` according to an explicit dense node map.
    pub fn from_node_map(
        graph: &StreamGraph,
        rates: &TupleRates,
        node_map: Vec<u32>,
        k: usize,
    ) -> Self {
        assert_eq!(node_map.len(), graph.num_nodes());
        let cpu = rates.cpu_demand(graph);
        let traffic = rates.edge_traffic(graph);

        let mut node_cpu = vec![0.0f64; k];
        let mut members = vec![0u32; k];
        for (v, &g) in node_map.iter().enumerate() {
            node_cpu[g as usize] += cpu[v];
            members[g as usize] += 1;
        }

        let mut internal_traffic = 0.0;
        let mut agg: HashMap<(u32, u32), f64> = HashMap::new();
        for (i, &(s, d)) in graph.edge_list().iter().enumerate() {
            let (gs, gd) = (node_map[s as usize], node_map[d as usize]);
            if gs == gd {
                internal_traffic += traffic[i];
            } else {
                *agg.entry((gs, gd)).or_insert(0.0) += traffic[i];
            }
        }
        let mut edges: Vec<(u32, u32)> = agg.keys().copied().collect();
        edges.sort_unstable();
        let edge_traffic = edges.iter().map(|k| agg[k]).collect();

        Self {
            node_map,
            coarse: CoarseGraph {
                node_cpu,
                members,
                edges,
                edge_traffic,
                internal_traffic,
            },
        }
    }

    /// The identity coarsening (no edges collapsed).
    pub fn identity(graph: &StreamGraph, rates: &TupleRates) -> Self {
        let node_map: Vec<u32> = (0..graph.num_nodes() as u32).collect();
        Self::from_node_map(graph, rates, node_map, graph.num_nodes())
    }

    /// Compression ratio `|V| / |V_coarse|` (≥ 1).
    pub fn compression_ratio(&self) -> f64 {
        self.node_map.len() as f64 / self.coarse.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Channel, Operator, StreamGraphBuilder};

    fn diamond() -> StreamGraph {
        let mut b = StreamGraphBuilder::new();
        let n0 = b.add_node(Operator::new(10.0));
        let n1 = b.add_node(Operator::new(20.0));
        let n2 = b.add_node(Operator::new(30.0));
        let n3 = b.add_node(Operator::new(40.0));
        b.add_edge(n0, n1, Channel::new(8.0)).unwrap();
        b.add_edge(n0, n2, Channel::new(8.0)).unwrap();
        b.add_edge(n1, n3, Channel::new(4.0)).unwrap();
        b.add_edge(n2, n3, Channel::new(4.0)).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn identity_preserves_everything() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let c = Coarsening::identity(&g, &rates);
        assert_eq!(c.coarse.num_nodes(), 4);
        assert_eq!(c.coarse.num_edges(), 4);
        assert_eq!(c.coarse.internal_traffic, 0.0);
        assert!((c.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn collapsing_one_edge_merges_endpoints() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // Collapse edge 0 (n0 -> n1).
        let c = Coarsening::from_collapse(&g, &rates, &[true, false, false, false], None, None);
        assert_eq!(c.coarse.num_nodes(), 3);
        assert_eq!(c.node_map[0], c.node_map[1]);
        assert_ne!(c.node_map[0], c.node_map[2]);
        // Internal traffic = traffic of edge 0 = 100 * 8 = 800 B/s.
        assert!((c.coarse.internal_traffic - 800.0).abs() < 1e-9);
        // Merged node's CPU = R0*10 + R1*20 = 1000 + 2000.
        let merged = c.node_map[0] as usize;
        assert!((c.coarse.node_cpu[merged] - 3000.0).abs() < 1e-9);
        assert_eq!(c.coarse.members[merged], 2);
    }

    #[test]
    fn collapse_all_gives_single_node() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let c = Coarsening::from_collapse(&g, &rates, &[true; 4], None, None);
        assert_eq!(c.coarse.num_nodes(), 1);
        assert_eq!(c.coarse.num_edges(), 0);
        assert!((c.compression_ratio() - 4.0).abs() < 1e-12);
        let total = rates.total_edge_traffic(&g);
        assert!((c.coarse.internal_traffic - total).abs() < 1e-9);
    }

    #[test]
    fn cpu_cap_blocks_merges() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // Every node's demand is >= 1000; cap of 1.0 forbids all merges.
        let c = Coarsening::from_collapse(&g, &rates, &[true; 4], Some(1.0), None);
        assert_eq!(c.coarse.num_nodes(), 4);
    }

    #[test]
    fn priority_changes_which_merge_survives_cap() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // Cap allows exactly one merge of n0(1000)+n1(2000)=3000 or
        // n0+n2=1000+3000=4000; cap 3500 only allows the first.
        let c =
            Coarsening::from_collapse(&g, &rates, &[true, true, false, false], Some(3500.0), None);
        assert_eq!(c.coarse.num_nodes(), 3);
        assert_eq!(c.node_map[0], c.node_map[1]);
        // With priority reversed, edge 1 (n0->n2) is tried first but exceeds
        // the cap, so edge 0 still merges.
        let c2 = Coarsening::from_collapse(
            &g,
            &rates,
            &[true, true, false, false],
            Some(3500.0),
            Some(&[1, 0, 2, 3]),
        );
        assert_eq!(c2.node_map[0], c2.node_map[1]);
    }

    #[test]
    fn traffic_is_conserved() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        let total = rates.total_edge_traffic(&g);
        for mask in 0u32..16 {
            let collapse: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
            let c = Coarsening::from_collapse(&g, &rates, &collapse, None, None);
            let ext = c.coarse.total_external_traffic();
            assert!(
                (ext + c.coarse.internal_traffic - total).abs() < 1e-6,
                "mask {mask}: {ext} + {} != {total}",
                c.coarse.internal_traffic
            );
        }
    }

    #[test]
    fn weighted_view_merges_antiparallel() {
        let g = diamond();
        let rates = TupleRates::compute(&g, 100.0);
        // Merge n1 and n2: coarse graph has edges {0}->{1,2} (two directed
        // edges aggregate into one) and {1,2}->{3}.
        let c = Coarsening::from_collapse(&g, &rates, &[false, false, false, false], None, None);
        let mut uf = UnionFind::new(4);
        uf.union(1, 2);
        let c2 = Coarsening::from_union_find(&g, &rates, &mut uf);
        drop(c);
        assert_eq!(c2.coarse.num_nodes(), 3);
        let w = c2.coarse.to_weighted();
        assert_eq!(w.num_edges(), 2);
    }
}
