//! Compressed sparse row adjacency used by [`crate::StreamGraph`] and
//! [`crate::WeightedGraph`].

use serde::{Deserialize, Serialize};

/// CSR adjacency: for each node, a contiguous slice of `(neighbor, edge_id)`
/// pairs. Construction counts degrees first so no intermediate per-node `Vec`
/// is allocated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    edge_ids: Vec<u32>,
}

impl Csr {
    /// Build from an edge iterator of `(from, to)` pairs. The edge id stored
    /// alongside each neighbour is the index in the iteration order.
    pub fn from_edges(n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut offsets = vec![0u32; n + 1];
        let mut m = 0usize;
        for (s, _) in edges.clone() {
            offsets[s as usize + 1] += 1;
            m += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; m];
        let mut edge_ids = vec![0u32; m];
        for (eid, (s, d)) in edges.enumerate() {
            let slot = cursor[s as usize] as usize;
            neighbors[slot] = d;
            edge_ids[slot] = eid as u32;
            cursor[s as usize] += 1;
        }
        Self {
            offsets,
            neighbors,
            edge_ids,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Iterate `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.edge_ids[lo..hi].iter().copied())
    }

    /// Neighbour slice of `v` (without edge ids).
    #[inline]
    pub fn neighbor_slice(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let edges = [(0u32, 1u32), (0, 2), (2, 1), (1, 3)];
        let csr = Csr::from_edges(4, edges.iter().copied());
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 0);
        let n0: Vec<_> = csr.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 0), (2, 1)]);
        let n2: Vec<_> = csr.neighbors(2).collect();
        assert_eq!(n2, vec![(1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(3, std::iter::empty());
        assert_eq!(csr.num_nodes(), 3);
        for v in 0..3 {
            assert_eq!(csr.degree(v), 0);
        }
    }

    #[test]
    fn preserves_edge_ids() {
        let edges = [(1u32, 0u32), (1, 2), (0, 2)];
        let csr = Csr::from_edges(3, edges.iter().copied());
        let n1: Vec<_> = csr.neighbors(1).collect();
        assert_eq!(n1, vec![(0, 0), (2, 1)]);
    }
}
