//! Compressed sparse row adjacency used by [`crate::StreamGraph`] and
//! [`crate::WeightedGraph`].

use serde::{Deserialize, Serialize};

/// CSR adjacency: for each node, a contiguous slice of `(neighbor, edge_id)`
/// pairs. Construction counts degrees first so no intermediate per-node `Vec`
/// is allocated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    edge_ids: Vec<u32>,
}

impl Default for Csr {
    /// An empty zero-node adjacency (valid: `offsets == [0]`).
    fn default() -> Self {
        Self::from_edges(0, std::iter::empty())
    }
}

impl Csr {
    /// Build from an edge iterator of `(from, to)` pairs. The edge id stored
    /// alongside each neighbour is the index in the iteration order (so each
    /// node's bucket lists its edge ids in ascending order).
    pub fn from_edges(n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut csr = Self {
            offsets: Vec::new(),
            neighbors: Vec::new(),
            edge_ids: Vec::new(),
        };
        csr.rebuild(n, edges);
        csr
    }

    /// Rebuild in place from a new edge iterator, reusing the existing
    /// allocations (the batched-inference hot path rebuilds a union CSR
    /// per serve batch). Produces exactly the arrays [`Csr::from_edges`]
    /// would.
    pub fn rebuild(&mut self, n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) {
        let offsets = &mut self.offsets;
        offsets.clear();
        offsets.resize(n + 1, 0);
        let mut m = 0usize;
        for (s, _) in edges.clone() {
            offsets[s as usize + 1] += 1;
            m += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        self.neighbors.clear();
        self.neighbors.resize(m, 0);
        self.edge_ids.clear();
        self.edge_ids.resize(m, 0);
        // `offsets[s]` doubles as the insertion cursor for bucket `s`; after
        // the fill it holds each bucket's end, which a right-shift turns
        // back into the start offsets — no separate cursor allocation.
        for (eid, (s, d)) in edges.enumerate() {
            let slot = offsets[s as usize] as usize;
            self.neighbors[slot] = d;
            self.edge_ids[slot] = eid as u32;
            offsets[s as usize] += 1;
        }
        for i in (1..=n).rev() {
            offsets[i] = offsets[i - 1];
        }
        if n > 0 {
            offsets[0] = 0;
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Iterate `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.edge_ids[lo..hi].iter().copied())
    }

    /// Neighbour slice of `v` (without edge ids).
    #[inline]
    pub fn neighbor_slice(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Edge-id slice of `v`'s bucket, ascending (construction preserves
    /// iteration order). This is what the padding-free segment passes walk.
    #[inline]
    pub fn edge_id_slice(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edge_ids[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let edges = [(0u32, 1u32), (0, 2), (2, 1), (1, 3)];
        let csr = Csr::from_edges(4, edges.iter().copied());
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(3), 0);
        let n0: Vec<_> = csr.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 0), (2, 1)]);
        let n2: Vec<_> = csr.neighbors(2).collect();
        assert_eq!(n2, vec![(1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(3, std::iter::empty());
        assert_eq!(csr.num_nodes(), 3);
        for v in 0..3 {
            assert_eq!(csr.degree(v), 0);
        }
    }

    #[test]
    fn preserves_edge_ids() {
        let edges = [(1u32, 0u32), (1, 2), (0, 2)];
        let csr = Csr::from_edges(3, edges.iter().copied());
        let n1: Vec<_> = csr.neighbors(1).collect();
        assert_eq!(n1, vec![(0, 0), (2, 1)]);
        assert_eq!(csr.edge_id_slice(1), &[0, 1]);
        assert_eq!(csr.edge_id_slice(2), &[] as &[u32]);
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let first = [(0u32, 1u32), (2, 0), (2, 1), (1, 0)];
        let second = [(3u32, 0u32), (0, 3), (3, 1)];
        let mut csr = Csr::from_edges(3, first.iter().copied());
        csr.rebuild(5, second.iter().copied());
        assert_eq!(csr, Csr::from_edges(5, second.iter().copied()));
        // Shrinking back down (and to empty) also matches.
        csr.rebuild(2, std::iter::empty());
        assert_eq!(csr, Csr::from_edges(2, std::iter::empty()));
        csr.rebuild(0, std::iter::empty());
        assert_eq!(csr.num_nodes(), 0);
    }
}
