//! # spg-baselines
//!
//! The baselines the paper compares against, all implemented on the same
//! substrates as the main model:
//!
//! * [`encdec::GraphEncDec`] — the state-of-the-art learned baseline
//!   (Ni et al., AAAI'20): graph encoder + LSTM decoder that assigns
//!   devices to nodes sequentially. Also usable as the *partitioning model*
//!   inside the coarsening framework (Coarsen+Graph-enc-dec).
//! * [`gdp::GdpLite`] — GDP-style direct placement: graph encoder, one
//!   round of scaled dot-product self-attention, per-node softmax over
//!   devices (non-autoregressive).
//! * [`hier::Hierarchical`] — the Mirhoseini et al. two-level model:
//!   a Grouper assigning nodes to 25 groups and a Placer assigning groups
//!   to devices, trained jointly.
//! * [`heuristics`] — random, round-robin, and single-device placements.
//!
//! All learned baselines are trained with the same REINFORCE loop
//! ([`trainer::PolicyTrainer`]) and the same relative-throughput reward as
//! the coarsening model, which makes the comparisons apples-to-apples.

pub mod encdec;
pub mod gdp;
pub mod heuristics;
pub mod hier;
pub mod trainer;

pub use encdec::GraphEncDec;
pub use gdp::GdpLite;
pub use heuristics::{AllOnOne, RandomPlacement, RoundRobin};
pub use hier::Hierarchical;
pub use trainer::{PolicyInput, PolicyModel, PolicyTrainOptions, PolicyTrainer};
