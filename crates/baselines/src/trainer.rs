//! Shared REINFORCE loop for direct-placement policies.
//!
//! Every learned baseline implements [`PolicyModel`]: one differentiable
//! rollout producing a placement and its log-probability. The trainer
//! samples several rollouts per graph, uses the mean reward as the
//! baseline, and backpropagates `-(r - b)/N · log π` through each
//! rollout's own tape (gradients accumulate in the shared parameters).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::{ClusterSpec, GraphFeatures, Placement, StreamGraph, TopoView, TupleRates};
use spg_nn::{Adam, ParamSet, Tape, Var};

/// Everything a policy needs to produce a placement.
pub struct PolicyInput<'a> {
    /// Topology (works for stream graphs and coarse graphs).
    pub view: TopoView<'a>,
    /// Node/edge features.
    pub feats: &'a GraphFeatures,
    /// Number of devices.
    pub devices: usize,
    /// Node visit order for sequential decoders (topological for DAGs;
    /// identity for possibly-cyclic coarse graphs).
    pub order: &'a [u32],
}

/// How a rollout picks actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutMode {
    /// Sample from the policy distribution (training).
    Sample,
    /// Argmax decoding (deployment).
    Greedy,
}

/// A differentiable direct-placement policy.
pub trait PolicyModel {
    /// Trainable parameters.
    fn params(&self) -> &ParamSet;

    /// Run one rollout on a fresh tape; returns the tape, the placement and
    /// the scalar log-probability node.
    fn rollout<R: Rng>(
        &self,
        input: &PolicyInput<'_>,
        mode: RolloutMode,
        rng: &mut R,
    ) -> (Tape, Placement, Var);

    /// Display name.
    fn model_name(&self) -> &str;
}

/// Options for [`PolicyTrainer`].
#[derive(Debug, Clone)]
pub struct PolicyTrainOptions {
    /// Rollouts per graph per step.
    pub samples: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PolicyTrainOptions {
    fn default() -> Self {
        Self {
            samples: 3,
            lr: 1e-3,
            seed: 0,
        }
    }
}

struct Instance {
    graph: StreamGraph,
    rates: TupleRates,
    feats: GraphFeatures,
    order: Vec<u32>,
}

/// REINFORCE trainer for a [`PolicyModel`].
pub struct PolicyTrainer<M: PolicyModel> {
    /// The policy being trained.
    pub model: M,
    /// Options.
    pub options: PolicyTrainOptions,
    adam: Adam,
    instances: Vec<Instance>,
    cluster: ClusterSpec,
    rng: ChaCha8Rng,
}

impl<M: PolicyModel> PolicyTrainer<M> {
    /// Prepare a trainer over `graphs`.
    pub fn new(
        model: M,
        graphs: Vec<StreamGraph>,
        cluster: ClusterSpec,
        source_rate: f64,
        options: PolicyTrainOptions,
    ) -> Self {
        let instances = graphs
            .into_iter()
            .map(|graph| {
                let rates = TupleRates::compute(&graph, source_rate);
                let feats = GraphFeatures::extract_with_rates(&graph, &cluster, &rates);
                let order = graph.topo_order().to_vec();
                Instance {
                    graph,
                    rates,
                    feats,
                    order,
                }
            })
            .collect();
        let rng = ChaCha8Rng::seed_from_u64(options.seed);
        let adam = Adam::new(options.lr);
        Self {
            model,
            options,
            adam,
            instances,
            cluster,
            rng,
        }
    }

    /// One epoch (one policy-gradient step per graph); returns the mean
    /// sampled reward.
    pub fn train_epoch(&mut self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for gi in 0..self.instances.len() {
            let samples = self.options.samples.max(1);
            let mut rollouts = Vec::with_capacity(samples);
            {
                let inst = &self.instances[gi];
                let input = PolicyInput {
                    view: inst.graph.topo_view(),
                    feats: &inst.feats,
                    devices: self.cluster.devices,
                    order: &inst.order,
                };
                for _ in 0..samples {
                    let (tape, placement, ll) =
                        self.model
                            .rollout(&input, RolloutMode::Sample, &mut self.rng);
                    let reward = spg_sim::reward::relative_throughput_with_rates(
                        &inst.graph,
                        &self.cluster,
                        &placement,
                        &inst.rates,
                    );
                    rollouts.push((tape, ll, reward));
                }
            }
            let baseline: f64 =
                rollouts.iter().map(|(_, _, r)| *r).sum::<f64>() / rollouts.len() as f64;
            self.model.params().zero_grad();
            for (mut tape, ll, reward) in rollouts {
                total += reward;
                count += 1;
                let coef = -((reward - baseline) as f32) / samples as f32;
                if coef == 0.0 {
                    continue;
                }
                let loss = tape.scale(ll, coef);
                tape.backward(loss);
            }
            self.adam.step(self.model.params());
        }
        if count > 0 {
            total / count as f64
        } else {
            0.0
        }
    }

    /// Mean greedy reward on `graphs`.
    pub fn evaluate(&self, graphs: &[StreamGraph], source_rate: f64) -> f64 {
        if graphs.is_empty() {
            return 0.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sum: f64 = graphs
            .iter()
            .map(|g| {
                let rates = TupleRates::compute(g, source_rate);
                let feats = GraphFeatures::extract_with_rates(g, &self.cluster, &rates);
                let order = g.topo_order().to_vec();
                let input = PolicyInput {
                    view: g.topo_view(),
                    feats: &feats,
                    devices: self.cluster.devices,
                    order: &order,
                };
                let (_, placement, _) = self.model.rollout(&input, RolloutMode::Greedy, &mut rng);
                spg_sim::reward::relative_throughput_with_rates(
                    g,
                    &self.cluster,
                    &placement,
                    &rates,
                )
            })
            .sum();
        sum / graphs.len() as f64
    }

    /// Consume the trainer, returning the trained model.
    pub fn into_model(self) -> M {
        self.model
    }
}

/// Sample or argmax a device from one row of logits.
pub(crate) fn pick_action<R: Rng>(logits_row: &[f32], mode: RolloutMode, rng: &mut R) -> u32 {
    match mode {
        RolloutMode::Greedy => logits_row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .unwrap_or(0),
        RolloutMode::Sample => {
            let max = logits_row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f64> = logits_row
                .iter()
                .map(|&z| ((z - max) as f64).exp())
                .collect();
            let total: f64 = exps.iter().sum();
            let mut u = rng.gen::<f64>() * total;
            for (i, &e) in exps.iter().enumerate() {
                u -= e;
                if u <= 0.0 {
                    return i as u32;
                }
            }
            (exps.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_action_greedy_takes_argmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            pick_action(&[0.1, 3.0, -1.0], RolloutMode::Greedy, &mut rng),
            1
        );
    }

    #[test]
    fn pick_action_sample_matches_softmax() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let logits = [0.0f32, (4.0f32).ln()]; // probs 0.2 / 0.8
        let n = 5000;
        let ones = (0..n)
            .filter(|_| pick_action(&logits, RolloutMode::Sample, &mut rng) == 1)
            .count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn pick_action_handles_extreme_logits() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = pick_action(&[-1e30, 1e30], RolloutMode::Sample, &mut rng);
        assert_eq!(a, 1);
    }
}
