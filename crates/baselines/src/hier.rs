//! Hierarchical (Mirhoseini et al., ICLR'18): a Grouper assigns every node
//! to one of `G` groups (25 in the paper's comparison), a Placer assigns
//! every group to a device; both are trained jointly with REINFORCE.
//!
//! The paper's analysis (§VI-B) explains why this general-purpose
//! coarsening formulation underperforms for multi-graph stream allocation:
//! group ids carry no cross-graph semantics. We reproduce the architecture
//! faithfully so that the comparison can be reproduced too.

use crate::trainer::{pick_action, PolicyInput, PolicyModel, RolloutMode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::config::CoarsenConfig;
use spg_core::encoder::EdgeAwareGnn;
use spg_graph::{Allocator, ClusterSpec, GraphFeatures, Placement, StreamGraph};
use spg_nn::layers::{Activation, Mlp};
use spg_nn::{ParamSet, Tape, Var};
use std::sync::atomic::{AtomicU64, Ordering};

/// The Hierarchical grouper+placer model.
pub struct Hierarchical {
    /// Number of groups (paper comparison: 25).
    pub groups: usize,
    /// Device count.
    pub devices: usize,
    encoder: EdgeAwareGnn,
    grouper: Mlp,
    placer: Mlp,
    params: ParamSet,
    name: String,
    seed: AtomicU64,
}

impl Hierarchical {
    /// Fresh model.
    pub fn new<R: Rng>(cfg: &CoarsenConfig, groups: usize, devices: usize, rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let encoder = EdgeAwareGnn::new(cfg, &mut params, rng);
        let emb = encoder.output_dim();
        let grouper = Mlp::new(
            &[emb, cfg.head_hidden, groups],
            Activation::Tanh,
            &mut params,
            rng,
        );
        let placer = Mlp::new(
            &[emb, cfg.head_hidden, devices],
            Activation::Tanh,
            &mut params,
            rng,
        );
        Self {
            groups,
            devices,
            encoder,
            grouper,
            placer,
            params,
            name: "Hierarchical".to_string(),
            seed: AtomicU64::new(17),
        }
    }
}

impl PolicyModel for Hierarchical {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn rollout<R: Rng>(
        &self,
        input: &PolicyInput<'_>,
        mode: RolloutMode,
        rng: &mut R,
    ) -> (Tape, Placement, Var) {
        assert_eq!(
            input.devices, self.devices,
            "model built for {} devices",
            self.devices
        );
        let n = input.view.num_nodes;
        let mut tape = Tape::new();
        let h = self.encoder.encode(&mut tape, &input.view, input.feats);

        // Grouper: sample a group per node.
        let group_logits = self.grouper.forward(&mut tape, h); // [N x G]
        let mut node_group = Vec::with_capacity(n);
        for r in 0..n {
            let row = tape.value(group_logits).row(r).to_vec();
            node_group.push(pick_action(&row, mode, rng));
        }
        let ll_groups = tape.categorical_log_prob(group_logits, &node_group);

        // Placer: group embedding = mean of member embeddings, then a
        // device per group. Empty groups get a zero embedding.
        let pooled = tape.segment_mean(h, &node_group, self.groups); // [G x emb]
        let device_logits = self.placer.forward(&mut tape, pooled); // [G x D]
        let mut group_device = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let row = tape.value(device_logits).row(g).to_vec();
            group_device.push(pick_action(&row, mode, rng));
        }
        let ll_devices = tape.categorical_log_prob(device_logits, &group_device);

        let ll = tape.add(ll_groups, ll_devices);
        let assignment: Vec<u32> = node_group
            .iter()
            .map(|&g| group_device[g as usize])
            .collect();
        (tape, Placement::new(assignment), ll)
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

impl Allocator for Hierarchical {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let feats = GraphFeatures::extract(graph, cluster, source_rate);
        let order = graph.topo_order().to_vec();
        let input = PolicyInput {
            view: graph.topo_view(),
            feats: &feats,
            devices: self.devices,
            order: &order,
        };
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (_, placement, _) = self.rollout(&input, RolloutMode::Greedy, &mut rng);
        placement
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{PolicyTrainOptions, PolicyTrainer};
    use spg_gen::{DatasetSpec, Setting};

    #[test]
    fn placement_is_group_consistent() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 0);
        let feats = GraphFeatures::extract(&g, &cluster, spec.source_rate);
        let order = g.topo_order().to_vec();
        let input = PolicyInput {
            view: g.topo_view(),
            feats: &feats,
            devices: cluster.devices,
            order: &order,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Hierarchical::new(&CoarsenConfig::default(), 8, cluster.devices, &mut rng);
        let (_, p, _) = model.rollout(&input, RolloutMode::Greedy, &mut rng);
        assert!(p.validate(&g, cluster.devices));
        // At most `groups` distinct devices can appear.
        assert!(p.devices_used() <= 8);
    }

    #[test]
    fn trains_one_epoch() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..2u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = Hierarchical::new(&CoarsenConfig::default(), 25, cluster.devices, &mut rng);
        let mut t = PolicyTrainer::new(
            model,
            graphs,
            cluster,
            spec.source_rate,
            PolicyTrainOptions::default(),
        );
        let r = t.train_epoch();
        assert!((0.0..=1.0).contains(&r));
    }
}
