//! GDP-lite (Zhou et al. 2019): direct placement with a graph encoder
//! followed by an attention-based placement network. We keep the published
//! structure — graph embedding, one block of scaled dot-product
//! self-attention over the nodes, per-node softmax over devices — without
//! the Transformer-XL depth (a deliberate scale-down documented in
//! DESIGN.md; the baseline's failure mode on large graphs is architectural,
//! not capacity-bound).

use crate::trainer::{pick_action, PolicyInput, PolicyModel, RolloutMode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::config::CoarsenConfig;
use spg_core::encoder::EdgeAwareGnn;
use spg_graph::{Allocator, ClusterSpec, GraphFeatures, Placement, StreamGraph};
use spg_nn::layers::Linear;
use spg_nn::{ParamSet, Tape, Var};
use std::sync::atomic::{AtomicU64, Ordering};

/// The GDP-lite model.
pub struct GdpLite {
    /// Device count the output layer covers.
    pub devices: usize,
    encoder: EdgeAwareGnn,
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    out: Linear,
    params: ParamSet,
    name: String,
    seed: AtomicU64,
    scale: f32,
}

impl GdpLite {
    /// Fresh model.
    pub fn new<R: Rng>(cfg: &CoarsenConfig, devices: usize, rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let encoder = EdgeAwareGnn::new(cfg, &mut params, rng);
        let emb = encoder.output_dim();
        let att = cfg.hidden;
        Self {
            devices,
            q_proj: Linear::new(emb, att, &mut params, rng),
            k_proj: Linear::new(emb, att, &mut params, rng),
            v_proj: Linear::new(emb, att, &mut params, rng),
            out: Linear::new(emb + att, devices, &mut params, rng),
            encoder,
            params,
            name: "GDP".to_string(),
            seed: AtomicU64::new(13),
            scale: 1.0 / (att as f32).sqrt(),
        }
    }

    /// Per-node device logits (`[N x D]`).
    fn logits(&self, tape: &mut Tape, input: &PolicyInput<'_>) -> Var {
        let h = self.encoder.encode(tape, &input.view, input.feats);
        let q = self.q_proj.forward(tape, h);
        let k = self.k_proj.forward(tape, h);
        let v = self.v_proj.forward(tape, h);
        let scores = tape.matmul_t(q, k);
        let scores = tape.scale(scores, self.scale);
        let attn = tape.row_softmax(scores);
        let ctx = tape.matmul(attn, v);
        let cat = tape.concat_cols(&[h, ctx]);
        self.out.forward(tape, cat)
    }
}

impl PolicyModel for GdpLite {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn rollout<R: Rng>(
        &self,
        input: &PolicyInput<'_>,
        mode: RolloutMode,
        rng: &mut R,
    ) -> (Tape, Placement, Var) {
        assert_eq!(
            input.devices, self.devices,
            "model built for {} devices",
            self.devices
        );
        let mut tape = Tape::new();
        let logits = self.logits(&mut tape, input);
        let n = input.view.num_nodes;
        let mut assignment = Vec::with_capacity(n);
        for r in 0..n {
            let row = tape.value(logits).row(r).to_vec();
            assignment.push(pick_action(&row, mode, rng));
        }
        let ll = tape.categorical_log_prob(logits, &assignment);
        (tape, Placement::new(assignment), ll)
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

impl Allocator for GdpLite {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let feats = GraphFeatures::extract(graph, cluster, source_rate);
        let order = graph.topo_order().to_vec();
        let input = PolicyInput {
            view: graph.topo_view(),
            feats: &feats,
            devices: self.devices,
            order: &order,
        };
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (_, placement, _) = self.rollout(&input, RolloutMode::Greedy, &mut rng);
        placement
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{PolicyTrainOptions, PolicyTrainer};
    use spg_gen::{DatasetSpec, Setting};

    #[test]
    fn produces_valid_placements() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = GdpLite::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let p = model.allocate(&g, &cluster, spec.source_rate);
        assert!(p.validate(&g, cluster.devices));
    }

    #[test]
    fn greedy_is_deterministic_given_weights() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = GdpLite::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let a = model.allocate(&g, &cluster, spec.source_rate);
        let b = model.allocate(&g, &cluster, spec.source_rate);
        assert_eq!(a, b, "greedy decoding must not depend on the seed stream");
    }

    #[test]
    fn trains_one_epoch() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..2u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = GdpLite::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let mut t = PolicyTrainer::new(
            model,
            graphs,
            cluster,
            spec.source_rate,
            PolicyTrainOptions::default(),
        );
        let r = t.train_epoch();
        assert!((0.0..=1.0).contains(&r));
    }
}
