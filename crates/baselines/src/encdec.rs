//! Graph-enc-dec (Ni et al., AAAI'20): the state-of-the-art learned
//! baseline. A graph encoder embeds the nodes; an LSTM decoder walks the
//! nodes in topological order and assigns a device per node, conditioning
//! on the previous assignment (graph-to-sequence).
//!
//! Because it implements [`spg_core::pipeline::CoarsePlacer`], it can also
//! serve as the partitioning model `M` of the coarsening framework
//! (the paper's Coarsen+Graph-enc-dec configuration).

use crate::trainer::{pick_action, PolicyInput, PolicyModel, RolloutMode};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_core::config::CoarsenConfig;
use spg_core::encoder::EdgeAwareGnn;
use spg_core::pipeline::CoarsePlacer;
use spg_graph::{Allocator, ClusterSpec, CoarseGraph, GraphFeatures, Placement, StreamGraph};
use spg_nn::layers::{Linear, LstmCell};
use spg_nn::{Matrix, ParamSet, Tape, Var};
use std::sync::atomic::{AtomicU64, Ordering};

/// The Graph-enc-dec model, built for a fixed device count.
pub struct GraphEncDec {
    /// Number of devices the decoder outputs over.
    pub devices: usize,
    encoder: EdgeAwareGnn,
    decoder: LstmCell,
    out: Linear,
    params: ParamSet,
    name: String,
    seed: AtomicU64,
}

impl GraphEncDec {
    /// Fresh model. `cfg.hidden` controls the encoder width.
    pub fn new<R: Rng>(cfg: &CoarsenConfig, devices: usize, rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let encoder = EdgeAwareGnn::new(cfg, &mut params, rng);
        let emb = encoder.output_dim();
        let hidden = emb;
        let decoder = LstmCell::new(emb + devices, hidden, &mut params, rng);
        let out = Linear::new(hidden, devices, &mut params, rng);
        Self {
            devices,
            encoder,
            decoder,
            out,
            params,
            name: "Graph-enc-dec".to_string(),
            seed: AtomicU64::new(11),
        }
    }
}

impl PolicyModel for GraphEncDec {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn rollout<R: Rng>(
        &self,
        input: &PolicyInput<'_>,
        mode: RolloutMode,
        rng: &mut R,
    ) -> (Tape, Placement, Var) {
        assert_eq!(
            input.devices, self.devices,
            "model built for {} devices",
            self.devices
        );
        let n = input.view.num_nodes;
        let mut tape = Tape::new();
        let h = self.encoder.encode(&mut tape, &input.view, input.feats);

        let (mut state_h, mut state_c) = self.decoder.zero_state(&mut tape, 1);
        let mut prev = tape.input(Matrix::zeros(1, self.devices));
        let mut assignment = vec![0u32; n];
        let mut ll_terms: Vec<Var> = Vec::with_capacity(n);

        for &v in input.order {
            let hv = tape.gather_rows(h, &[v]);
            let inp = tape.concat_cols(&[hv, prev]);
            let (h2, c2) = self.decoder.step(&mut tape, inp, state_h, state_c);
            state_h = h2;
            state_c = c2;
            let logits = self.out.forward(&mut tape, state_h); // [1 x D]
            let row = tape.value(logits).row(0).to_vec();
            let action = pick_action(&row, mode, rng);
            assignment[v as usize] = action;
            ll_terms.push(tape.categorical_log_prob(logits, &[action]));
            // Feed the chosen device back in as a one-hot.
            let mut onehot = Matrix::zeros(1, self.devices);
            onehot.set(0, action as usize, 1.0);
            prev = tape.input(onehot);
        }

        let mut ll = ll_terms[0];
        for &term in &ll_terms[1..] {
            ll = tape.add(ll, term);
        }
        (tape, Placement::new(assignment), ll)
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

impl Allocator for GraphEncDec {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, source_rate: f64) -> Placement {
        let feats = GraphFeatures::extract(graph, cluster, source_rate);
        let order = graph.topo_order().to_vec();
        let input = PolicyInput {
            view: graph.topo_view(),
            feats: &feats,
            devices: cluster.devices.min(self.devices),
            order: &order,
        };
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (_, placement, _) = self.rollout(&input, RolloutMode::Greedy, &mut rng);
        placement
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl CoarsePlacer for GraphEncDec {
    fn place_coarse(&self, coarse: &CoarseGraph, cluster: &ClusterSpec) -> Placement {
        let feats = GraphFeatures::from_coarse(coarse, cluster);
        // Coarse graphs may be cyclic; decode in node-id order.
        let order: Vec<u32> = (0..coarse.num_nodes() as u32).collect();
        let input = PolicyInput {
            view: coarse.topo_view(),
            feats: &feats,
            devices: self.devices,
            order: &order,
        };
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (_, placement, _) = self.rollout(&input, RolloutMode::Greedy, &mut rng);
        placement
    }

    fn placer_name(&self) -> &str {
        "Graph-enc-dec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{PolicyTrainOptions, PolicyTrainer};
    use spg_gen::{DatasetSpec, Setting};

    #[test]
    fn rollout_assigns_every_node() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = GraphEncDec::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let p = model.allocate(&g, &cluster, spec.source_rate);
        assert!(p.validate(&g, cluster.devices));
    }

    #[test]
    fn trains_one_epoch() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let graphs: Vec<StreamGraph> = (0..2u64)
            .map(|s| spg_gen::generate_graph(&spec, s))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = GraphEncDec::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let mut t = PolicyTrainer::new(
            model,
            graphs,
            cluster,
            spec.source_rate,
            PolicyTrainOptions::default(),
        );
        let r = t.train_epoch();
        assert!((0.0..=1.0).contains(&r), "reward {r}");
    }

    #[test]
    fn places_coarse_graphs() {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        let cluster = spec.cluster();
        let g = spg_gen::generate_graph(&spec, 2);
        let rates = spg_graph::TupleRates::compute(&g, spec.source_rate);
        let c = spg_graph::Coarsening::identity(&g, &rates);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = GraphEncDec::new(&CoarsenConfig::default(), cluster.devices, &mut rng);
        let p = model.place_coarse(&c.coarse, &cluster);
        assert_eq!(p.len(), c.coarse.num_nodes());
        assert!(p.max_device_bound() <= cluster.devices);
    }
}
