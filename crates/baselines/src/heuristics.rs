//! Non-learned reference placements.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg_graph::{Allocator, ClusterSpec, Placement, StreamGraph};
use std::sync::atomic::{AtomicU64, Ordering};

/// Uniform random device per node.
pub struct RandomPlacement {
    seed: AtomicU64,
}

impl RandomPlacement {
    /// Deterministic stream from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed: AtomicU64::new(seed),
        }
    }
}

impl Allocator for RandomPlacement {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, _rate: f64) -> Placement {
        let seed = self.seed.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Placement::new(
            (0..graph.num_nodes())
                .map(|_| rng.gen_range(0..cluster.devices as u32))
                .collect(),
        )
    }

    fn name(&self) -> &str {
        "Random"
    }
}

/// Round-robin by topological position: balances node *count* (not load)
/// and cuts almost every edge — a lower bound on communication awareness.
pub struct RoundRobin;

impl Allocator for RoundRobin {
    fn allocate(&self, graph: &StreamGraph, cluster: &ClusterSpec, _rate: f64) -> Placement {
        let mut assignment = vec![0u32; graph.num_nodes()];
        for (i, &v) in graph.topo_order().iter().enumerate() {
            assignment[v as usize] = (i % cluster.devices) as u32;
        }
        Placement::new(assignment)
    }

    fn name(&self) -> &str {
        "Round-robin"
    }
}

/// Everything on device 0: zero communication, maximal CPU contention.
pub struct AllOnOne;

impl Allocator for AllOnOne {
    fn allocate(&self, graph: &StreamGraph, _cluster: &ClusterSpec, _rate: f64) -> Placement {
        Placement::all_on_one(graph.num_nodes())
    }

    fn name(&self) -> &str {
        "All-on-one"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg_gen::{DatasetSpec, Setting};

    fn graph_and_cluster() -> (StreamGraph, ClusterSpec, f64) {
        let spec = DatasetSpec::scaled_down(Setting::Small);
        (
            spg_gen::generate_graph(&spec, 0),
            spec.cluster(),
            spec.source_rate,
        )
    }

    #[test]
    fn random_is_valid_and_varies() {
        let (g, c, r) = graph_and_cluster();
        let alloc = RandomPlacement::new(0);
        let p1 = alloc.allocate(&g, &c, r);
        let p2 = alloc.allocate(&g, &c, r);
        assert!(p1.validate(&g, c.devices));
        assert!(p2.validate(&g, c.devices));
        assert_ne!(p1, p2, "successive random placements should differ");
    }

    #[test]
    fn round_robin_balances_counts() {
        let (g, c, r) = graph_and_cluster();
        let p = RoundRobin.allocate(&g, &c, r);
        let mut counts = vec![0usize; c.devices];
        for v in 0..g.num_nodes() {
            counts[p.device(v) as usize] += 1;
        }
        let (min, max) = (
            counts.iter().copied().min().unwrap(),
            counts.iter().copied().max().unwrap(),
        );
        assert!(max - min <= 1);
    }

    #[test]
    fn all_on_one_uses_one_device() {
        let (g, c, r) = graph_and_cluster();
        let p = AllOnOne.allocate(&g, &c, r);
        assert_eq!(p.devices_used(), 1);
        assert_eq!(p.cut_edges(&g), 0);
    }
}
