//! The full training recipe of the paper (§IV-C): curriculum over graph
//! sizes with Metis-guided buffer seeding, then transfer to larger unseen
//! graphs.
//!
//! Run with `cargo run --release --example curriculum_training`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::Allocator;
use spg::model::curriculum::{train_curriculum, CurriculumLevel};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, TrainOptions};
use spg::partition::MetisAllocator;

fn level(setting: Setting, graphs: usize, epochs: usize, seed: u64) -> CurriculumLevel {
    let spec = DatasetSpec::scaled_down(setting);
    CurriculumLevel {
        name: spec.name.clone(),
        graphs: (0..graphs as u64)
            .map(|s| spg::gen::generate_graph(&spec, seed + s))
            .collect(),
        cluster: spec.cluster(),
        source_rate: spec.source_rate,
        epochs,
    }
}

fn main() {
    // Levels: small -> medium -> large (scaled-down sizes; set the paper's
    // node ranges via DatasetSpec::for_setting for a full run).
    let levels = vec![
        level(Setting::Small, 10, 5, 0),
        level(Setting::Medium, 8, 3, 100),
        level(Setting::Large, 6, 2, 200),
    ];

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let placer = MetisCoarsePlacer::new(2);
    let options = TrainOptions::new().metis_guided(true);

    println!("training through {} curriculum levels...", levels.len());
    let (model, history) = train_curriculum(model, &placer, &levels, &options);
    for level_stats in &history {
        print!("level {:<12}", level_stats.name);
        for (e, s) in level_stats.epochs.iter().enumerate() {
            print!(" e{e}: r={:.3}/best={:.3}", s.mean_reward, s.mean_best);
        }
        println!();
    }

    // Transfer: evaluate on x-large graphs the model never saw.
    let xspec = DatasetSpec::scaled_down(Setting::XLarge);
    let test = spg::gen::generate_dataset(&xspec, 6, 12345);
    let ours = CoarsenAllocator::new(model, MetisCoarsePlacer::new(3));
    let metis = MetisAllocator::new(4);

    println!(
        "\ntransfer to unseen x-large graphs ({} devices):",
        xspec.devices
    );
    let our_result = spg::eval::evaluate_allocator(&ours as &dyn Allocator, &test);
    let metis_result = spg::eval::evaluate_allocator(&metis as &dyn Allocator, &test);
    println!(
        "  Coarsen+Metis  AUC {:.0}  mean throughput {:.0}/s",
        our_result.auc(),
        our_result.mean_throughput()
    );
    println!(
        "  Metis          AUC {:.0}  mean throughput {:.0}/s",
        metis_result.auc(),
        metis_result.mean_throughput()
    );
}
