//! A tour of the two throughput simulators: the analytic bottleneck model
//! (used as the RL reward — microseconds per evaluation) and the
//! discrete-time backpressure simulator (used to validate it).
//!
//! Run with `cargo run --release --example simulator_tour`.

use spg::gen::{DatasetSpec, Setting};
use spg::graph::Placement;
use spg::sim::des::{simulate_des, DesConfig};
use std::time::Instant;

fn main() {
    let spec = DatasetSpec::scaled_down(Setting::Medium);
    let cluster = spec.cluster();
    let g = spg::gen::generate_graph(&spec, 42);
    println!(
        "graph: {} operators, {} channels",
        g.num_nodes(),
        g.num_edges()
    );

    // Three placements of increasing quality.
    let all_on_one = Placement::all_on_one(g.num_nodes());
    let round_robin = Placement::new(
        (0..g.num_nodes() as u32)
            .map(|v| v % cluster.devices as u32)
            .collect(),
    );
    let metis = {
        use spg::graph::Allocator;
        spg::partition::MetisAllocator::new(1).allocate(&g, &cluster, spec.source_rate)
    };

    println!(
        "\n{:<14} {:>12} {:>12} {:>10} {:>12}",
        "placement", "analytic T/s", "DES T/s", "delta", "bottleneck"
    );
    for (name, p) in [
        ("all-on-one", &all_on_one),
        ("round-robin", &round_robin),
        ("metis", &metis),
    ] {
        let a = spg::sim::analytic::simulate(&g, &cluster, p, spec.source_rate);
        let d = simulate_des(&g, &cluster, p, spec.source_rate, &DesConfig::default());
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>9.1}% {:>12?}",
            name,
            a.throughput,
            d.throughput,
            (a.throughput - d.throughput).abs() / a.throughput.max(1.0) * 100.0,
            a.bottleneck,
        );
    }

    // Speed comparison: this asymmetry is why RL training uses the
    // analytic model (the paper spent 98 of 108 minutes per epoch inside
    // CEPSim).
    let n = 200;
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(spg::sim::analytic::simulate(
            &g,
            &cluster,
            &metis,
            spec.source_rate,
        ));
    }
    let analytic_us = t0.elapsed().as_micros() as f64 / n as f64;
    let t0 = Instant::now();
    let des_runs = 5;
    for _ in 0..des_runs {
        std::hint::black_box(simulate_des(
            &g,
            &cluster,
            &metis,
            spec.source_rate,
            &DesConfig::default(),
        ));
    }
    let des_us = t0.elapsed().as_micros() as f64 / des_runs as f64;
    println!(
        "\nanalytic: {analytic_us:.0} us/eval   discrete-time: {des_us:.0} us/eval   speedup: {:.0}x",
        des_us / analytic_us.max(1.0)
    );
}
