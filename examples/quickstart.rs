//! Quickstart: build a stream graph, train the coarsening model on a few
//! synthetic graphs, and allocate the graph onto a cluster.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::graph::{Allocator, Channel, ClusterSpec, Operator, StreamGraphBuilder};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer};

fn main() {
    // ---- 1. Describe a stream application as a DAG ---------------------
    // A little log-analytics pipeline: a source fans out to two parsers,
    // which feed an aggregator and a sink.
    let mut b = StreamGraphBuilder::new();
    let source = b.add_node(Operator::new(2_000.0)); // instructions per tuple
    let parse_a = b.add_node(Operator::new(60_000.0));
    let parse_b = b.add_node(Operator::new(45_000.0));
    let aggregate = b.add_node(Operator::new(30_000.0));
    let sink = b.add_node(Operator::new(5_000.0));
    b.add_edge(source, parse_a, Channel::with_selectivity(512.0, 0.5))
        .unwrap();
    b.add_edge(source, parse_b, Channel::with_selectivity(512.0, 0.5))
        .unwrap();
    b.add_edge(parse_a, aggregate, Channel::new(128.0)).unwrap();
    b.add_edge(parse_b, aggregate, Channel::new(128.0)).unwrap();
    b.add_edge(aggregate, sink, Channel::new(64.0)).unwrap();
    let app = b.finish().expect("valid DAG");

    // ---- 2. Describe the cluster and the load --------------------------
    let cluster = ClusterSpec::new(4, 1.25e3 /* MIPS */, 1000.0 /* Mbps */);
    let source_rate = 10_000.0; // tuples per second

    // ---- 3. Train the coarsening model on synthetic graphs -------------
    // (in a real deployment you would train once, offline, on a corpus of
    // graphs resembling your workloads; see the `curriculum_training`
    // example for the full recipe).
    let spec = spg::gen::DatasetSpec::scaled_down(spg::gen::Setting::Small);
    let train_graphs: Vec<_> = (0..8u64)
        .map(|s| spg::gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(1))
        .graphs(train_graphs)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .build();
    for epoch in 0..4 {
        let stats = trainer.train_epoch();
        println!(
            "epoch {epoch}: mean on-policy reward {:.3}, best-in-buffer {:.3}",
            stats.mean_reward, stats.mean_best
        );
    }

    // ---- 4. Allocate the application ------------------------------------
    let allocator = CoarsenAllocator::new(trainer.into_model(), MetisCoarsePlacer::new(2));
    let placement = allocator.allocate(&app, &cluster, source_rate);
    println!("\nplacement (operator -> device):");
    for (v, name) in ["source", "parse_a", "parse_b", "aggregate", "sink"]
        .iter()
        .enumerate()
    {
        println!("  {name:<10} -> device {}", placement.device(v));
    }

    // ---- 5. Check the allocation in the simulator -----------------------
    let result = spg::sim::analytic::simulate(&app, &cluster, &placement, source_rate);
    println!(
        "\nsustained throughput: {:.0}/s of {source_rate}/s offered (relative {:.2})",
        result.throughput, result.relative
    );
    println!("bottleneck: {:?}", result.bottleneck);
    assert!(result.relative > 0.0);
}
