//! The excess-device scenario (§V / Fig. 7 of the paper): the cluster has
//! more devices than the optimal allocation needs, so spreading the graph
//! over all of them wastes bandwidth. A good allocator picks a *subset*.
//!
//! This example compares Metis at fixed k, Metis-oracle (sweeping k) and
//! the learned coarsening pipeline — and prints how many devices each
//! actually uses.
//!
//! Run with `cargo run --release --example excess_devices`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::eval::{evaluate_allocator, render_table};
use spg::gen::{DatasetSpec, Setting};
use spg::graph::Allocator;
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer};
use spg::partition::{MetisAllocator, MetisOracle};

fn main() {
    // An excess-device dataset: lightly-loaded graphs, lower bandwidth.
    let spec = DatasetSpec::scaled_down(Setting::ExcessDevice);
    let train = spg::gen::generate_dataset(&spec, 10, 100);
    let test = spg::gen::generate_dataset(&spec, 8, 999);
    println!(
        "excess-device setting: {} devices, {} Mbps links, {} test graphs\n",
        spec.devices,
        spec.link_mbps,
        test.graphs.len()
    );

    // Train the coarsening model directly on the excess setting so it can
    // learn to use fewer devices.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(6))
        .graphs(train.graphs)
        .cluster(train.cluster)
        .source_rate(train.source_rate)
        .build();
    for _ in 0..6 {
        trainer.train_epoch();
    }
    let ours = CoarsenAllocator::new(trainer.into_model(), MetisCoarsePlacer::new(7));

    let metis = MetisAllocator::new(1);
    let oracle = MetisOracle::new(2);

    let results = vec![
        evaluate_allocator(&metis as &dyn Allocator, &test),
        evaluate_allocator(&oracle as &dyn Allocator, &test),
        evaluate_allocator(&ours as &dyn Allocator, &test),
    ];
    println!("{}", render_table("Excess-device comparison", &results));

    println!("devices used per graph:");
    for r in &results {
        let mean: f64 =
            r.devices_used.iter().map(|&d| d as f64).sum::<f64>() / r.devices_used.len() as f64;
        println!("  {:<16} {:?}  (mean {:.1})", r.name, r.devices_used, mean);
    }
}
