//! The paper's future-work extension in action: allocating onto a
//! *heterogeneous* cluster (devices with different MIPS).
//!
//! The coarsening model is capacity-agnostic — it only decides which edges
//! to merge — so the same trained model carries over; only the partitioner
//! changes, using device capacity shares as target weights.
//!
//! Run with `cargo run --release --example heterogeneous_cluster`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::gen::{DatasetSpec, Setting};
use spg::graph::{HeteroClusterSpec, Placement};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenConfig, CoarsenModel, ReinforceTrainer};
use spg::partition::MetisHeteroAllocator;
use spg::sim::hetero::simulate_hetero;

fn main() {
    // Cluster: two small devices, one big one (4x), one medium.
    let cluster = HeteroClusterSpec::new(vec![625.0, 625.0, 2500.0, 1250.0], 1000.0);
    println!(
        "heterogeneous cluster: {:?} MIPS, {} Mbps links",
        cluster.mips, cluster.link_mbps
    );

    // Train the coarsening model on the *homogeneous equivalent* — the
    // coarsening decisions transfer.
    let spec = DatasetSpec::scaled_down(Setting::Small);
    let train: Vec<_> = (0..10u64)
        .map(|s| spg::gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(1))
        .graphs(train)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .build();
    for _ in 0..4 {
        trainer.train_epoch();
    }
    let model = trainer.into_model();

    // Evaluate on fresh graphs: coarsen with the model, then place the
    // coarse graph with capacity-share targets.
    let hetero_metis = MetisHeteroAllocator::new(7);
    let policy = spg::model::CoarseningPolicy::from_config(&model.config);
    let homo_equiv = cluster.equivalent_homogeneous();

    println!(
        "\n{:<8} {:>7} {:>9} {:>14} {:>14} {:>12}",
        "graph", "nodes", "coarse", "hetero-metis", "coarsen+het", "improvement"
    );
    for seed in 100..106u64 {
        let g = spg::gen::generate_graph(&spec, seed);
        let rates = spg::graph::TupleRates::compute(&g, spec.source_rate);

        // Baseline: target-weighted Metis directly on the full graph.
        let p_metis = hetero_metis.allocate_hetero(&g, &cluster, spec.source_rate);
        let r_metis = simulate_hetero(&g, &cluster, &p_metis, spec.source_rate).relative;

        // Coarsen + target-weighted Metis on the coarse graph.
        let feats = spg::graph::GraphFeatures::extract_with_rates(&g, &homo_equiv, &rates);
        let probs = model.predict_probs_with_features(&g, &feats);
        let mut drng = ChaCha8Rng::seed_from_u64(seed);
        let decisions = policy.decode(&probs, spg::model::DecodeMode::Greedy, &mut drng);
        let coarsening = policy.apply(&g, &rates, &homo_equiv, &decisions, &probs);
        let w = coarsening.coarse.to_weighted();
        let targets = cluster.capacity_shares();
        let coarse_part = spg::partition::kway_partition_targets(
            &w,
            &targets,
            &spg::partition::PartitionConfig::default(),
            &mut drng,
        );
        let p_ours = Placement::lift(&Placement::new(coarse_part), &coarsening.node_map);
        let r_ours = simulate_hetero(&g, &cluster, &p_ours, spec.source_rate).relative;

        println!(
            "{:<8} {:>7} {:>9} {:>13.3} {:>14.3} {:>11.0}%",
            seed,
            g.num_nodes(),
            coarsening.coarse.num_nodes(),
            r_metis,
            r_ours,
            (r_ours - r_metis) / r_metis.max(1e-9) * 100.0
        );
    }
}
