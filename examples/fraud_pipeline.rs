//! A realistic domain scenario: allocating a card-fraud-detection stream
//! pipeline (the kind of workload the paper's introduction motivates) onto
//! a small cluster, comparing the learned coarsening pipeline against the
//! Metis baseline and naive placements.
//!
//! Topology (35 operators): ingest -> enrich (x4 shards) -> feature
//! extraction stages -> model scoring (x8 replicas) -> rule engines ->
//! aggregation -> alert sink, with a heavy side-channel to an audit log.
//!
//! Run with `cargo run --release --example fraud_pipeline`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spg::baselines::{RandomPlacement, RoundRobin};
use spg::graph::{Allocator, Channel, ClusterSpec, NodeId, Operator, StreamGraphBuilder};
use spg::model::pipeline::MetisCoarsePlacer;
use spg::model::{CoarsenAllocator, CoarsenConfig, CoarsenModel, ReinforceTrainer};
use spg::partition::MetisAllocator;
use spg::StreamGraph;

/// Build the fraud-detection pipeline.
fn fraud_pipeline() -> StreamGraph {
    let mut b = StreamGraphBuilder::new();
    let ingest = b.add_node(Operator::new(3_000.0));

    // Enrichment shards: the stream is hash-partitioned four ways.
    let enrich: Vec<NodeId> = (0..4)
        .map(|_| b.add_node(Operator::new(40_000.0)))
        .collect();
    for &e in &enrich {
        b.add_edge(ingest, e, Channel::with_selectivity(800.0, 0.25))
            .unwrap();
    }

    // Two feature-extraction stages per shard.
    let mut features = Vec::new();
    for &e in &enrich {
        let f1 = b.add_node(Operator::new(90_000.0));
        let f2 = b.add_node(Operator::new(70_000.0));
        b.add_edge(e, f1, Channel::new(24_000.0)).unwrap();
        b.add_edge(f1, f2, Channel::new(18_000.0)).unwrap();
        features.push(f2);
    }

    // Scoring replicas: each shard fans out to two scorers.
    let mut scorers = Vec::new();
    for &f in &features {
        for _ in 0..2 {
            let s = b.add_node(Operator::new(150_000.0));
            b.add_edge(f, s, Channel::with_selectivity(12_000.0, 0.5))
                .unwrap();
            scorers.push(s);
        }
    }

    // Rule engines merge pairs of scorers.
    let mut rules = Vec::new();
    for pair in scorers.chunks(2) {
        let r = b.add_node(Operator::new(25_000.0));
        for &s in pair {
            b.add_edge(s, r, Channel::new(200.0)).unwrap();
        }
        rules.push(r);
    }

    // Aggregate, alert, audit.
    let aggregate = b.add_node(Operator::new(20_000.0));
    for &r in &rules {
        b.add_edge(r, aggregate, Channel::new(150.0)).unwrap();
    }
    let alerts = b.add_node(Operator::new(4_000.0));
    b.add_edge(aggregate, alerts, Channel::with_selectivity(100.0, 0.02))
        .unwrap();
    let audit = b.add_node(Operator::new(2_000.0));
    // The audit log receives the full enriched stream - a heavy edge a good
    // allocation must not cut.
    b.add_edge(aggregate, audit, Channel::new(40_000.0))
        .unwrap();

    b.finish().expect("valid pipeline")
}

fn main() {
    let app = fraud_pipeline();
    let cluster = ClusterSpec::new(6, 1.25e3, 1000.0);
    let rate = 30_000.0;
    println!(
        "fraud pipeline: {} operators, {} channels on {} devices @ {rate}/s\n",
        app.num_nodes(),
        app.num_edges(),
        cluster.devices
    );

    // Train a coarsening model on synthetic graphs of a similar scale.
    let spec = spg::gen::DatasetSpec::scaled_down(spg::gen::Setting::Small);
    let train: Vec<StreamGraph> = (0..10u64)
        .map(|s| spg::gen::generate_graph(&spec, s))
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = CoarsenModel::new(CoarsenConfig::default(), &mut rng);
    let mut trainer = ReinforceTrainer::builder(model, MetisCoarsePlacer::new(1))
        .graphs(train)
        .cluster(spec.cluster())
        .source_rate(spec.source_rate)
        .build();
    for _ in 0..5 {
        trainer.train_epoch();
    }
    let ours =
        CoarsenAllocator::new(trainer.into_model(), MetisCoarsePlacer::new(2)).with_best_of(8);

    let metis = MetisAllocator::new(7);
    let random = RandomPlacement::new(3);
    let allocators: Vec<&dyn Allocator> = vec![&ours, &metis, &RoundRobin, &random];

    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>8}",
        "method", "throughput/s", "relative", "cut edges", "devices"
    );
    for alloc in allocators {
        let p = alloc.allocate(&app, &cluster, rate);
        let sim = spg::sim::analytic::simulate(&app, &cluster, &p, rate);
        println!(
            "{:<18} {:>12.0} {:>10.3} {:>10} {:>8}",
            alloc.name(),
            sim.throughput,
            sim.relative,
            p.cut_edges(&app),
            p.devices_used()
        );
    }
}
